"""The Chord Swarm — transferring the LDS construction to Chord.

The paper closes its abstract with: *"our approaches can be transferred to a
variety of classical P2P topologies where nodes are mapped into the [0,1)
interval"*.  This module carries that out for Chord (after Fiat, Saia &
Young's swarm-Chord): each node keeps

* **list edges** to everything within ``2*c*lam/n`` (same as the LDS), and
* **finger edges** to everything within ``2*c*lam/n`` of ``v + 2^-i`` for
  ``i = 1..lam``.

The analogue of the Swarm Property (Lemma 6) holds with *no* rounding error:
fingers are translations, so for any point ``p`` every node of ``S(p)`` is
connected to all of ``S(p + 2^-i)`` (triangle inequality with the full
``2*c*lam/n`` finger radius).  Routing corrects the clockwise distance to
the target bit by bit (most significant first); "zero bits" hold the message
in place, so the trajectory has exactly ``lam + 2`` points and the dilation
matches the LDS's ``2*lam + 2``.

The price of the transfer is degree: ``lam`` finger arcs instead of the De
Bruijn graph's two halving arcs — ``Theta(log^2 n)`` edges per node versus
``Theta(log n)``.  The comparison experiment (E-X1) measures exactly this
trade.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.config import ProtocolParams
from repro.overlay.positions import PositionIndex
from repro.overlay.swarm import swarm_members
from repro.util.bits import address_of, point_of
from repro.util.intervals import Arc, wrap

__all__ = ["ChordSwarmGraph", "chord_trajectory", "chord_finger_arcs"]


def chord_finger_arcs(p: float, params: ProtocolParams) -> list[Arc]:
    """The finger arcs of a node at ``p``: around ``p + 2^-i``, i = 1..lam.

    Finger arcs use the full list radius because translations preserve
    distances (no halving slack is available, unlike De Bruijn edges).
    """
    return [
        Arc(wrap(p + 2.0**-i), params.list_radius) for i in range(1, params.lam + 1)
    ]


def chord_trajectory(v: float, p: float, lam: int) -> tuple[float, ...]:
    """The Chord routing trajectory from ``v`` to ``p`` (lam + 2 points).

    Let ``d = (p - v) mod 1`` with ``lam``-bit address ``D``.  Step ``i``
    adds ``2^-i`` if bit ``i`` of ``D`` is set (most significant first) and
    stays put otherwise, so ``x_i = v + (top i bits of D)`` and
    ``x_lam`` is within ``2^-lam`` of ``p``; ``x_{lam+1} = p`` exactly.
    """
    v = wrap(v)
    d = wrap(p - v)
    addr = address_of(d, lam)
    points = [v]
    for i in range(1, lam + 1):
        prefix = (addr >> (lam - i)) << (lam - i)
        points.append(wrap(v + point_of(prefix, lam)))
    points.append(wrap(p))
    return tuple(points)


class ChordSwarmGraph:
    """A Chord-swarm snapshot: positions plus the implied edge sets."""

    def __init__(self, index: PositionIndex, params: ProtocolParams) -> None:
        self.index = index
        self.params = params
        self._neighbors: dict[int, np.ndarray] = {}

    @classmethod
    def random(
        cls, params: ProtocolParams, rng: np.random.Generator, n: int | None = None
    ) -> "ChordSwarmGraph":
        count = params.n if n is None else n
        positions = {i: float(p) for i, p in enumerate(rng.random(count))}
        return cls(PositionIndex(positions), params)

    @classmethod
    def from_positions(
        cls, positions: Mapping[int, float], params: ProtocolParams
    ) -> "ChordSwarmGraph":
        return cls(PositionIndex(positions), params)

    @property
    def node_ids(self) -> np.ndarray:
        return self.index.ids

    def __len__(self) -> int:
        return len(self.index)

    # ------------------------------------------------------------------
    # Neighbourhoods
    # ------------------------------------------------------------------

    def list_neighbors(self, v: int) -> np.ndarray:
        p = self.index.position(v)
        ids = self.index.ids_within(p, self.params.list_radius)
        return ids[ids != v]

    def finger_neighbors(self, v: int) -> np.ndarray:
        p = self.index.position(v)
        parts = [
            self.index.ids_in_arc(arc) for arc in chord_finger_arcs(p, self.params)
        ]
        merged = np.unique(np.concatenate(parts)) if parts else np.array([], dtype=np.int64)
        return merged[merged != v]

    def neighbors(self, v: int) -> np.ndarray:
        cached = self._neighbors.get(v)
        if cached is None:
            cached = np.union1d(self.list_neighbors(v), self.finger_neighbors(v))
            self._neighbors[v] = cached
        return cached

    def swarm(self, p: float) -> np.ndarray:
        return swarm_members(self.index, p, self.params)

    def degree_stats(self) -> tuple[int, float, int]:
        degs = [int(self.neighbors(int(v)).size) for v in self.node_ids]
        if not degs:
            return (0, 0.0, 0)
        return (min(degs), float(np.mean(degs)), max(degs))

    def edge_count(self) -> int:
        return int(sum(self.neighbors(int(v)).size for v in self.node_ids))

    # ------------------------------------------------------------------
    # Audits
    # ------------------------------------------------------------------

    def check_finger_property(self, points: np.ndarray) -> bool:
        """The Chord analogue of Lemma 6: S(p) is adjacent to S(p + 2^-i)."""
        params = self.params
        for p in points:
            members = self.swarm(float(p))
            for i in range(1, params.lam + 1):
                target = set(int(w) for w in self.swarm(wrap(float(p) + 2.0**-i)))
                for v in members:
                    nbrs = set(int(w) for w in self.neighbors(int(v)))
                    nbrs.add(int(v))
                    if not target <= nbrs:
                        return False
        return True
