"""Routing trajectories — Definition 7.

The trajectory ``tau(v, p) = x_0, ..., x_{lam+1}`` is the sequence of points a
message visits under bitwise De Bruijn routing from a node at position ``v``
to the target ``p``: ``x_0 = v``; ``x_i`` replaces the top ``i`` bits of ``v``
with the *low* ``i`` bits of ``p`` (pushed least-significant-first, so that
after ``lam`` steps the address equals ``p``'s address); ``x_{lam+1} = p``.

Each consecutive pair satisfies ``x_i ≈ (x_{i-1} + bit)/2`` up to ``2^-lam``,
which is why swarm-to-swarm forwarding along the trajectory only ever uses
De Bruijn edges (Lemma 6) plus one final list-edge-range hop.

The module also provides the interval-crossing census used by Lemma 12:
``E[#trajectories with their j-th step in I] = k * n * |I|``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.util.bits import address_of, debruijn_prefix_address, point_of
from repro.util.intervals import Arc, wrap

__all__ = ["trajectory", "trajectory_bits", "crossing_counts", "max_step_error"]


def trajectory_bits(p: float, lam: int) -> tuple[int, ...]:
    """The ``lam`` most significant bits ``(d_1, ..., d_lam)`` of the target."""
    addr = address_of(p, lam)
    return tuple((addr >> (lam - 1 - i)) & 1 for i in range(lam))


def trajectory(v: float, p: float, lam: int) -> tuple[float, ...]:
    """The full trajectory ``tau(v, p)`` as ``lam + 2`` points in ``[0, 1)``."""
    src = address_of(v, lam)
    dst = address_of(p, lam)
    points = [wrap(v)]
    for i in range(1, lam + 1):
        points.append(point_of(debruijn_prefix_address(src, dst, i, lam), lam))
    points.append(wrap(p))
    return tuple(points)


def max_step_error(traj: Sequence[float]) -> float:
    """Largest deviation of a step from the ideal map ``x -> (x + bit)/2``.

    For a valid trajectory this is at most ``2**-lam`` for the De Bruijn steps
    and at most ``2**-lam`` for the final list correction; routing absorbs it
    in the swarm radius slack.
    """
    worst = 0.0
    for a, b in zip(traj[:-2], traj[1:-1]):
        candidates = [wrap((a + bit) / 2.0) for bit in (0, 1)]
        err = min(
            min(abs(b - c), 1.0 - abs(b - c)) for c in candidates
        )
        worst = max(worst, err)
    # Final correction step: distance from x_lam to the true target point.
    tail = abs(traj[-1] - traj[-2])
    worst = max(worst, min(tail, 1.0 - tail))
    return worst


def crossing_counts(
    sources: np.ndarray,
    targets: np.ndarray,
    lam: int,
    interval: Arc,
    step: int,
) -> int:
    """How many trajectories have their ``step``-th point inside ``interval``.

    ``sources[i] -> targets[i]`` defines trajectory ``i``.  Vectorised: the
    ``step``-th point of every trajectory is computed with integer array ops.
    """
    if not 0 <= step <= lam + 1:
        raise ValueError(f"step {step} out of range [0, {lam + 1}]")
    if sources.shape != targets.shape:
        raise ValueError("sources and targets must have identical shape")
    span = 1 << lam
    if step == 0:
        pts = np.mod(sources, 1.0)
    elif step == lam + 1:
        pts = np.mod(targets, 1.0)
    else:
        src = np.minimum((np.mod(sources, 1.0) * span).astype(np.int64), span - 1)
        dst = np.minimum((np.mod(targets, 1.0) * span).astype(np.int64), span - 1)
        low = dst & ((1 << step) - 1)
        pts = ((low << (lam - step)) | (src >> step)) / span
    return int(np.count_nonzero(interval.contains_array(pts)))
