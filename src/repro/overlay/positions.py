"""Sorted position tables with wrap-aware range queries.

The hot loop of every topology operation is "which nodes lie within distance
``rho`` of point ``p`` on the ring?".  :class:`PositionIndex` answers this in
``O(log n + output)`` via a sorted NumPy array and ``searchsorted`` — the
vectorised idiom recommended by the HPC guides (no Python-level scans).

All range queries funnel through one bounds helper (:meth:`_bounds`) so the
endpoint and float-wrap semantics cannot drift apart between ``ids_within``,
``count_within`` and the arc variants: a tiny negative ``center - radius``
wraps to exactly ``1.0`` under ``%``, which the helper clamps back to ``0.0``.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.util.intervals import Arc, ring_distance

__all__ = ["PositionIndex"]


class PositionIndex:
    """An immutable snapshot of node positions on the unit ring.

    Parameters
    ----------
    positions:
        Mapping from node id to position in ``[0, 1)``.
    """

    __slots__ = ("_ids", "_pos", "_by_id", "_ids_list")

    def __init__(self, positions: Mapping[int, float]) -> None:
        ids = np.fromiter(positions.keys(), dtype=np.int64, count=len(positions))
        pos = np.fromiter(positions.values(), dtype=np.float64, count=len(positions))
        if pos.size and (pos.min() < 0.0 or pos.max() >= 1.0):
            raise ValueError("all positions must lie in [0, 1)")
        order = np.argsort(pos, kind="stable")
        self._ids = ids[order]
        self._pos = pos[order]
        self._by_id = dict(zip(self._ids.tolist(), self._pos.tolist()))
        self._ids_list: list[int] | None = None

    @classmethod
    def _from_sorted(cls, ids: np.ndarray, pos: np.ndarray) -> "PositionIndex":
        """Internal: build from already position-sorted, validated arrays."""
        obj = cls.__new__(cls)
        obj._ids = ids
        obj._pos = pos
        obj._by_id = dict(zip(ids.tolist(), pos.tolist()))
        obj._ids_list = None
        return obj

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._ids.size

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._by_id

    @property
    def ids(self) -> np.ndarray:
        """Node ids, sorted by position (do not mutate)."""
        return self._ids

    @property
    def sorted_positions(self) -> np.ndarray:
        """Positions in ascending order (do not mutate)."""
        return self._pos

    @property
    def ids_list(self) -> list[int]:
        """Node ids sorted by position, as a cached plain-``int`` list.

        Batched hot paths slice this list directly (list slices beat ndarray
        slice + ``tolist`` for the tiny windows a swarm lookup returns).
        Do not mutate.
        """
        cached = self._ids_list
        if cached is None:
            cached = self._ids.tolist()
            self._ids_list = cached
        return cached

    def position(self, node_id: int) -> float:
        """Position of one node; raises ``KeyError`` for unknown ids."""
        return self._by_id[node_id]

    def as_dict(self) -> dict[int, float]:
        """A fresh id -> position dict."""
        return dict(self._by_id)

    # ------------------------------------------------------------------
    # Range queries
    # ------------------------------------------------------------------

    def _bounds(self, center: float, radius: float) -> tuple[int, int, bool]:
        """Searchsorted bounds ``(a, b, wrapped)`` of the arc around ``center``.

        Not wrapped: the arc covers sorted indices ``[a, b)``.  Wrapped: it
        covers ``[a, n)`` plus ``[0, b)``.  Callers must handle the
        ``radius >= 0.5`` full-ring case themselves (it has no bounds).
        """
        pos = self._pos
        lo = (center - radius) % 1.0
        hi = (center + radius) % 1.0
        if lo >= 1.0:  # float edge: tiny negative wraps to exactly 1.0
            lo = 0.0
        a = pos.searchsorted(lo, "left")
        b = pos.searchsorted(hi, "right")
        return a, b, lo > hi

    def bounds_many(
        self, centers: np.ndarray, radius: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised :meth:`_bounds` over many arc centers at one radius.

        One pair of batched ``searchsorted`` calls replaces two scalar calls
        per center; ``%`` on float64 arrays is IEEE-identical to Python's
        scalar ``%``, so slice ``i`` is byte-identical to what
        ``ids_within(centers[i], radius)`` would return.  Callers handle the
        ``radius >= 0.5`` full-ring case themselves.
        """
        pos = self._pos
        lo = (centers - radius) % 1.0
        lo[lo >= 1.0] = 0.0  # same float-wrap guard as the scalar path
        hi = (centers + radius) % 1.0
        return pos.searchsorted(lo, "left"), pos.searchsorted(hi, "right"), lo > hi

    def ids_within(self, center: float, radius: float) -> np.ndarray:
        """Ids of all nodes ``v`` with ``d(v, center) <= radius``.

        Hot path (called per routed hop): returned ids are ordered by ring
        position starting at the arc's counter-clockwise endpoint.  The
        bounds logic is :meth:`_bounds`, inlined to spare a function call.
        """
        if radius >= 0.5:
            return self._ids
        pos = self._pos
        lo = (center - radius) % 1.0
        hi = (center + radius) % 1.0
        if lo >= 1.0:  # float edge: tiny negative wraps to exactly 1.0
            lo = 0.0
        ids = self._ids
        if lo <= hi:
            return ids[pos.searchsorted(lo, "left"):pos.searchsorted(hi, "right")]
        return np.concatenate(
            [ids[pos.searchsorted(lo, "left"):], ids[:pos.searchsorted(hi, "right")]]
        )

    def ids_within_list(self, center: float, radius: float) -> list[int]:
        """:meth:`ids_within` as a plain-``int`` list (shared, do not mutate).

        Slices the cached :attr:`ids_list` — for the tiny windows swarm
        queries return, list slicing plus C-level ``list.index`` beats the
        ndarray round-trip.  Same content and order as :meth:`ids_within`.
        """
        ids = self.ids_list
        if radius >= 0.5:
            return ids
        a, b, wrapped = self._bounds(center, radius)
        if not wrapped:
            return ids[a:b]
        return ids[a:] + ids[:b]

    def count_within(self, center: float, radius: float) -> int:
        """Number of nodes within distance ``radius`` of ``center``.

        Shares :meth:`_bounds` with :meth:`ids_within` (including the
        ``lo >= 1.0`` float-wrap guard) so count and ids can never disagree
        at arc boundaries.
        """
        if radius >= 0.5:
            return self._ids.size
        a, b, wrapped = self._bounds(center, radius)
        if not wrapped:
            return int(b - a)
        return int(self._ids.size - a + b)

    def indices_in_arc(self, arc: Arc) -> np.ndarray:
        """Sorted-array indices of all nodes inside the arc (endpoint-inclusive)."""
        if arc.radius >= 0.5:
            return np.arange(self._pos.size)
        a, b, wrapped = self._bounds(arc.center, arc.radius)
        if not wrapped:
            return np.arange(a, b)
        return np.concatenate([np.arange(a, self._pos.size), np.arange(0, b)])

    def ids_in_arc(self, arc: Arc) -> np.ndarray:
        """Ids of all nodes within ``arc.radius`` of ``arc.center``."""
        return self.ids_within(arc.center, arc.radius)

    def sorted_ids_in_arc(self, arc: Arc) -> np.ndarray:
        """Ids inside the arc ordered by ring position starting at the arc's
        counter-clockwise endpoint (used by A_SAMPLING's rank rule)."""
        return self.ids_within(arc.center, arc.radius)

    def closest(self, p: float) -> int:
        """Id of the node closest to ``p`` (ties broken toward lower position)."""
        if self._pos.size == 0:
            raise ValueError("empty position index")
        i = int(np.searchsorted(self._pos, p % 1.0))
        candidates = {(i - 1) % self._pos.size, i % self._pos.size}
        best = min(
            candidates, key=lambda j: (ring_distance(self._pos[j], p), self._pos[j])
        )
        return int(self._ids[best])

    def restricted(self, keep: Iterable[int]) -> "PositionIndex":
        """A new index containing only the given node ids (e.g. churn survivors).

        Filters the sorted arrays directly (``np.isin``) instead of rebuilding
        an id -> position dict element by element; the relative position order
        of survivors is preserved, so no re-sort is needed.
        """
        if isinstance(keep, np.ndarray):
            keep_arr = keep.astype(np.int64, copy=False)
        else:
            keep_set = keep if isinstance(keep, (set, frozenset)) else set(keep)
            keep_arr = np.fromiter(keep_set, dtype=np.int64, count=len(keep_set))
        mask = np.isin(self._ids, keep_arr)
        return PositionIndex._from_sorted(self._ids[mask], self._pos[mask])
