"""Sorted position tables with wrap-aware range queries.

The hot loop of every topology operation is "which nodes lie within distance
``rho`` of point ``p`` on the ring?".  :class:`PositionIndex` answers this in
``O(log n + output)`` via a sorted NumPy array and ``searchsorted`` — the
vectorised idiom recommended by the HPC guides (no Python-level scans).
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.util.intervals import Arc, ring_distance

__all__ = ["PositionIndex"]


class PositionIndex:
    """An immutable snapshot of node positions on the unit ring.

    Parameters
    ----------
    positions:
        Mapping from node id to position in ``[0, 1)``.
    """

    def __init__(self, positions: Mapping[int, float]) -> None:
        ids = np.fromiter(positions.keys(), dtype=np.int64, count=len(positions))
        pos = np.fromiter(positions.values(), dtype=np.float64, count=len(positions))
        if pos.size and (pos.min() < 0.0 or pos.max() >= 1.0):
            raise ValueError("all positions must lie in [0, 1)")
        order = np.argsort(pos, kind="stable")
        self._ids = ids[order]
        self._pos = pos[order]
        self._by_id = {int(i): float(p) for i, p in zip(self._ids, self._pos)}

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._ids.size

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._by_id

    @property
    def ids(self) -> np.ndarray:
        """Node ids, sorted by position (do not mutate)."""
        return self._ids

    @property
    def sorted_positions(self) -> np.ndarray:
        """Positions in ascending order (do not mutate)."""
        return self._pos

    def position(self, node_id: int) -> float:
        """Position of one node; raises ``KeyError`` for unknown ids."""
        return self._by_id[node_id]

    def as_dict(self) -> dict[int, float]:
        """A fresh id -> position dict."""
        return dict(self._by_id)

    # ------------------------------------------------------------------
    # Range queries
    # ------------------------------------------------------------------

    def _segment_slices(self, lo: float, hi: float) -> list[slice]:
        """Index slices of the sorted array covering the arc [lo, hi] (wrapped)."""
        if hi - lo >= 1.0:
            return [slice(0, self._pos.size)]
        lo_w = lo % 1.0
        hi_w = hi % 1.0
        if lo_w <= hi_w:
            a = int(np.searchsorted(self._pos, lo_w, side="left"))
            b = int(np.searchsorted(self._pos, hi_w, side="right"))
            return [slice(a, b)]
        # Wrapped arc: [lo_w, 1) union [0, hi_w].
        a = int(np.searchsorted(self._pos, lo_w, side="left"))
        b = int(np.searchsorted(self._pos, hi_w, side="right"))
        return [slice(a, self._pos.size), slice(0, b)]

    def indices_in_arc(self, arc: Arc) -> np.ndarray:
        """Sorted-array indices of all nodes inside the arc (endpoint-inclusive)."""
        slices = self._segment_slices(arc.center - arc.radius, arc.center + arc.radius)
        if len(slices) == 1:
            return np.arange(slices[0].start, slices[0].stop)
        return np.concatenate([np.arange(s.start, s.stop) for s in slices])

    def ids_in_arc(self, arc: Arc) -> np.ndarray:
        """Ids of all nodes within ``arc.radius`` of ``arc.center``."""
        return self._ids[self.indices_in_arc(arc)]

    def ids_within(self, center: float, radius: float) -> np.ndarray:
        """Ids of all nodes ``v`` with ``d(v, center) <= radius``.

        Hot path: equivalent to ``ids_in_arc(Arc(center, radius))`` but
        avoids Arc construction and fancy indexing (called per routed hop).
        """
        if radius >= 0.5:
            return self._ids
        pos = self._pos
        lo = (center - radius) % 1.0
        hi = (center + radius) % 1.0
        if lo >= 1.0:  # float edge: tiny negative wraps to exactly 1.0
            lo = 0.0
        if lo <= hi:
            a = pos.searchsorted(lo, "left")
            b = pos.searchsorted(hi, "right")
            return self._ids[a:b]
        a = pos.searchsorted(lo, "left")
        b = pos.searchsorted(hi, "right")
        return np.concatenate([self._ids[a:], self._ids[:b]])

    def count_within(self, center: float, radius: float) -> int:
        """Number of nodes within distance ``radius`` of ``center``."""
        total = 0
        for s in self._segment_slices(center - radius, center + radius):
            total += s.stop - s.start
        return total

    def sorted_ids_in_arc(self, arc: Arc) -> np.ndarray:
        """Ids inside the arc ordered by ring position starting at the arc's
        counter-clockwise endpoint (used by A_SAMPLING's rank rule)."""
        slices = self._segment_slices(arc.center - arc.radius, arc.center + arc.radius)
        parts = [self._ids[s] for s in slices]
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    def closest(self, p: float) -> int:
        """Id of the node closest to ``p`` (ties broken toward lower position)."""
        if self._pos.size == 0:
            raise ValueError("empty position index")
        i = int(np.searchsorted(self._pos, p % 1.0))
        candidates = {(i - 1) % self._pos.size, i % self._pos.size}
        best = min(
            candidates, key=lambda j: (ring_distance(self._pos[j], p), self._pos[j])
        )
        return int(self._ids[best])

    def restricted(self, keep: Iterable[int]) -> "PositionIndex":
        """A new index containing only the given node ids (e.g. churn survivors)."""
        keep_set = set(keep)
        return PositionIndex(
            {int(i): float(p) for i, p in zip(self._ids, self._pos) if int(i) in keep_set}
        )
