"""Sorted position tables with wrap-aware range queries.

The hot loop of every topology operation is "which nodes lie within distance
``rho`` of point ``p`` on the ring?".  :class:`PositionIndex` answers this in
``O(log n + output)`` via a sorted NumPy array and ``searchsorted`` — the
vectorised idiom recommended by the HPC guides (no Python-level scans).

All range queries funnel through one bounds helper (:meth:`_bounds`) so the
endpoint and float-wrap semantics cannot drift apart between ``ids_within``,
``count_within`` and the arc variants: a tiny negative ``center - radius``
wraps to exactly ``1.0`` under ``%``, which the helper clamps back to ``0.0``.

Indexes are immutable, but not island-like: the epoch cache
(:mod:`repro.sim.epochs`) grows one shared per-epoch index incrementally via
:meth:`with_added` / :meth:`without` — O(changed + n) array surgery instead
of an O(n log n) re-sort — and cuts per-node views out of it with
:meth:`restricted`.  The id -> position map and the id -> slot map are built
lazily: hot construction paths (one index per node per cutover) only pay for
the sorted arrays; dict materialisation happens on the first point lookup.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.util.intervals import Arc, ring_distance

__all__ = ["PositionIndex"]


def _coerce_keep(keep: Iterable[int]) -> np.ndarray:
    """Canonical int64 id array for membership filters (both input paths).

    ``set``/iterable and ``np.ndarray`` inputs go through the same
    normalisation: deduplicate, require integral values, and tolerate
    unknown ids (they simply match nothing).  Floats that are not exact
    integers are rejected rather than silently truncated.
    """
    if isinstance(keep, np.ndarray):
        arr = keep
        if arr.dtype.kind == "f":
            as_int = arr.astype(np.int64)
            if not np.array_equal(as_int, arr):
                raise ValueError("keep ids must be integral")
            arr = as_int
        elif arr.dtype.kind not in "iu":
            raise ValueError(f"keep ids must be integers, got dtype {arr.dtype}")
        return np.unique(arr.astype(np.int64, copy=False))
    keep_set = keep if isinstance(keep, (set, frozenset)) else set(keep)
    for v in keep_set:
        if not isinstance(v, (int, np.integer)):
            raise ValueError(f"keep ids must be integers, got {v!r}")
    return np.fromiter(keep_set, dtype=np.int64, count=len(keep_set))


class PositionIndex:
    """An immutable snapshot of node positions on the unit ring.

    Parameters
    ----------
    positions:
        Mapping from node id to position in ``[0, 1)``.
    """

    __slots__ = (
        "_ids",
        "_pos",
        "_by_id",
        "_ids_list",
        "_pos_list",
        "_slot_by_id",
        "_scratch",
    )

    def __init__(self, positions: Mapping[int, float]) -> None:
        # repro: allow(unordered-iteration): dict .keys() is insertion-ordered
        # (values() below iterates identically), and the stable argsort right
        # after makes the index independent of the input order anyway.
        ids = np.fromiter(positions.keys(), dtype=np.int64, count=len(positions))
        pos = np.fromiter(positions.values(), dtype=np.float64, count=len(positions))
        if pos.size and (pos.min() < 0.0 or pos.max() >= 1.0):
            raise ValueError("all positions must lie in [0, 1)")
        order = np.argsort(pos, kind="stable")
        self._ids = ids[order]
        self._pos = pos[order]
        self._by_id: dict[int, float] | None = None
        self._ids_list: list[int] | None = None
        self._pos_list: list[float] | None = None
        self._slot_by_id: dict[int, int] | None = None
        self._scratch: dict[object, object] | None = None

    @classmethod
    def _from_sorted(cls, ids: np.ndarray, pos: np.ndarray) -> "PositionIndex":
        """Internal: build from already position-sorted, validated arrays."""
        obj = cls.__new__(cls)
        obj._ids = ids
        obj._pos = pos
        obj._by_id = None
        obj._ids_list = None
        obj._pos_list = None
        obj._slot_by_id = None
        obj._scratch = None
        return obj

    @property
    def scratch(self) -> dict[object, object]:
        """Consumer memo space, living exactly as long as the index.

        Interned indexes are shared across every node with the same member
        set (see ``EpochCache.index_for``), so values derived purely from
        the positions in this index — window member tuples, per-target
        record batches — can be computed once and reused network-wide.
        Callers must only store data that is a pure function of the index
        contents (plus globally fixed parameters), never per-node state.
        """
        scratch = self._scratch
        if scratch is None:
            scratch = self._scratch = {}
        return scratch

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._ids.size

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._map()

    def _map(self) -> dict[int, float]:
        """The lazy id -> position dict (built once, on first point lookup)."""
        by_id = self._by_id
        if by_id is None:
            by_id = dict(zip(self._ids.tolist(), self._pos.tolist()))
            self._by_id = by_id
        return by_id

    def _slots(self) -> dict[int, int]:
        """The lazy id -> sorted-array-slot dict (for O(1) rank queries)."""
        slots = self._slot_by_id
        if slots is None:
            slots = {v: i for i, v in enumerate(self.ids_list)}
            self._slot_by_id = slots
        return slots

    @property
    def slot_map(self) -> dict[int, int]:
        """The lazy id -> sorted-array-slot dict (do not mutate).

        Slot ``i`` means ``ids_list[i]``; hot paths use it to excise one
        known member from a window slice without scanning for it.
        """
        return self._slots()

    @property
    def ids(self) -> np.ndarray:
        """Node ids, sorted by position (do not mutate)."""
        return self._ids

    @property
    def sorted_positions(self) -> np.ndarray:
        """Positions in ascending order (do not mutate)."""
        return self._pos

    @property
    def ids_list(self) -> list[int]:
        """Node ids sorted by position, as a cached plain-``int`` list.

        Batched hot paths slice this list directly (list slices beat ndarray
        slice + ``tolist`` for the tiny windows a swarm lookup returns).
        Do not mutate.
        """
        cached = self._ids_list
        if cached is None:
            cached = self._ids.tolist()
            self._ids_list = cached
        return cached

    def position(self, node_id: int) -> float:
        """Position of one node; raises ``KeyError`` for unknown ids."""
        return self._map()[node_id]

    def as_dict(self) -> dict[int, float]:
        """A fresh id -> position dict."""
        return dict(self._map())

    # ------------------------------------------------------------------
    # Range queries
    # ------------------------------------------------------------------

    def _bounds(self, center: float, radius: float) -> tuple[int, int, bool]:
        """Searchsorted bounds ``(a, b, wrapped)`` of the arc around ``center``.

        Not wrapped: the arc covers sorted indices ``[a, b)``.  Wrapped: it
        covers ``[a, n)`` plus ``[0, b)``.  Callers must handle the
        ``radius >= 0.5`` full-ring case themselves (it has no bounds).

        Scalar lookups bisect a cached plain-``float`` list: ``tolist``
        round-trips float64 exactly, so C-level ``bisect`` returns the very
        indices ``searchsorted`` would (the batched :meth:`bounds_many`
        stays on NumPy).
        """
        pos = self._pos_list
        if pos is None:
            pos = self._pos_list = self._pos.tolist()
        lo = (center - radius) % 1.0
        hi = (center + radius) % 1.0
        if lo >= 1.0:  # float edge: tiny negative wraps to exactly 1.0
            lo = 0.0
        return bisect_left(pos, lo), bisect_right(pos, hi), lo > hi

    def bounds_many(
        self, centers: np.ndarray, radius: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised :meth:`_bounds` over many arc centers at one radius.

        One pair of batched ``searchsorted`` calls replaces two scalar calls
        per center; ``%`` on float64 arrays is IEEE-identical to Python's
        scalar ``%``, so slice ``i`` is byte-identical to what
        ``ids_within(centers[i], radius)`` would return.  Callers handle the
        ``radius >= 0.5`` full-ring case themselves.
        """
        pos = self._pos
        lo = (centers - radius) % 1.0
        lo[lo >= 1.0] = 0.0  # same float-wrap guard as the scalar path
        hi = (centers + radius) % 1.0
        return pos.searchsorted(lo, "left"), pos.searchsorted(hi, "right"), lo > hi

    def ids_within(self, center: float, radius: float) -> np.ndarray:
        """Ids of all nodes ``v`` with ``d(v, center) <= radius``.

        Hot path (called per routed hop): returned ids are ordered by ring
        position starting at the arc's counter-clockwise endpoint.  The
        bounds logic is :meth:`_bounds`, inlined to spare a function call.
        """
        if radius >= 0.5:
            return self._ids
        pos = self._pos
        lo = (center - radius) % 1.0
        hi = (center + radius) % 1.0
        if lo >= 1.0:  # float edge: tiny negative wraps to exactly 1.0
            lo = 0.0
        ids = self._ids
        if lo <= hi:
            return ids[pos.searchsorted(lo, "left"):pos.searchsorted(hi, "right")]
        return np.concatenate(
            [ids[pos.searchsorted(lo, "left"):], ids[:pos.searchsorted(hi, "right")]]
        )

    def ids_within_list(self, center: float, radius: float) -> list[int]:
        """:meth:`ids_within` as a plain-``int`` list (shared, do not mutate).

        Slices the cached :attr:`ids_list` — for the tiny windows swarm
        queries return, list slicing plus C-level ``list.index`` beats the
        ndarray round-trip.  Same content and order as :meth:`ids_within`.
        """
        ids = self.ids_list
        if radius >= 0.5:
            return ids
        a, b, wrapped = self._bounds(center, radius)
        if not wrapped:
            return ids[a:b]
        return ids[a:] + ids[:b]

    def count_within(self, center: float, radius: float) -> int:
        """Number of nodes within distance ``radius`` of ``center``.

        Shares :meth:`_bounds` with :meth:`ids_within` (including the
        ``lo >= 1.0`` float-wrap guard) so count and ids can never disagree
        at arc boundaries.
        """
        if radius >= 0.5:
            return self._ids.size
        a, b, wrapped = self._bounds(center, radius)
        if not wrapped:
            return int(b - a)
        return int(self._ids.size - a + b)

    def rank_within(self, center: float, radius: float, node_id: int) -> int | None:
        """Rank of ``node_id`` in the arc's position ordering, or ``None``.

        Equivalent to ``ids_within_list(center, radius).index(node_id)``
        (``None`` when absent) but O(1) after the lazy slot map exists: the
        window is a contiguous run of the sorted array, so a member's rank
        is its sorted slot minus the window start (wrap-adjusted).  The
        A_SAMPLING delivery rule calls this once per arriving token.
        """
        slot = self._slots().get(node_id)
        if slot is None:
            return None
        n = self._ids.size
        if radius >= 0.5:
            return slot
        a, b, wrapped = self._bounds(center, radius)
        if not wrapped:
            return slot - a if a <= slot < b else None
        if slot >= a:
            return slot - a
        if slot < b:
            return n - a + slot
        return None

    def ranks_within_many(
        self, centers: np.ndarray, radius: float, node_id: int
    ) -> np.ndarray:
        """Vectorised :meth:`rank_within` over many arc centers.

        Returns one rank per center, with ``-1`` where ``node_id`` lies
        outside that arc (the array stand-in for the scalar ``None``).
        Element ``i`` equals ``rank_within(centers[i], radius, node_id)``
        bit for bit: the bounds come from :meth:`bounds_many`, which is
        IEEE-identical to the scalar bounds path.
        """
        out = np.full(centers.shape, -1, dtype=np.int64)
        slot = self._slots().get(node_id)
        if slot is None:
            return out
        if radius >= 0.5:
            out[:] = slot
            return out
        n = self._ids.size
        a, b, wrapped = self.bounds_many(centers, radius)
        plain = ~wrapped & (a <= slot) & (slot < b)
        out[plain] = slot - a[plain]
        high = wrapped & (slot >= a)
        out[high] = slot - a[high]
        low = wrapped & (slot < a) & (slot < b)
        out[low] = n - a[low] + slot
        return out

    def indices_in_arc(self, arc: Arc) -> np.ndarray:
        """Sorted-array indices of all nodes inside the arc (endpoint-inclusive)."""
        if arc.radius >= 0.5:
            return np.arange(self._pos.size)
        a, b, wrapped = self._bounds(arc.center, arc.radius)
        if not wrapped:
            return np.arange(a, b)
        return np.concatenate([np.arange(a, self._pos.size), np.arange(0, b)])

    def ids_in_arc(self, arc: Arc) -> np.ndarray:
        """Ids of all nodes within ``arc.radius`` of ``arc.center``."""
        return self.ids_within(arc.center, arc.radius)

    def sorted_ids_in_arc(self, arc: Arc) -> np.ndarray:
        """Ids inside the arc ordered by ring position starting at the arc's
        counter-clockwise endpoint (used by A_SAMPLING's rank rule)."""
        return self.ids_within(arc.center, arc.radius)

    def closest(self, p: float) -> int:
        """Id of the node closest to ``p`` (ties broken toward lower position)."""
        if self._pos.size == 0:
            raise ValueError("empty position index")
        i = int(np.searchsorted(self._pos, p % 1.0))
        candidates = {(i - 1) % self._pos.size, i % self._pos.size}
        best = min(
            candidates, key=lambda j: (ring_distance(self._pos[j], p), self._pos[j])
        )
        return int(self._ids[best])

    # ------------------------------------------------------------------
    # Derived indexes (copy-on-write construction)
    # ------------------------------------------------------------------

    def restricted(self, keep: Iterable[int]) -> "PositionIndex":
        """A new index containing only the given node ids (e.g. churn survivors).

        Filters the sorted arrays directly (``np.isin``) instead of rebuilding
        an id -> position dict element by element; the relative position order
        of survivors is preserved, so no re-sort is needed.  ``keep`` may be
        any iterable of ids or an ``np.ndarray``; both paths deduplicate and
        ignore unknown ids identically (see :func:`_coerce_keep`).
        """
        keep_arr = _coerce_keep(keep)
        mask = np.isin(self._ids, keep_arr)
        return PositionIndex._from_sorted(self._ids[mask], self._pos[mask])

    def without(self, drop: Iterable[int]) -> "PositionIndex":
        """A new index with the given ids removed — O(dropped + n), no re-sort.

        The incremental churn path: removing ``k`` departed nodes costs one
        ``np.isin`` over ``k`` sorted ids plus one masked copy, instead of
        rebuilding and re-sorting the whole table.  Unknown ids are ignored.
        """
        drop_arr = _coerce_keep(drop)
        if drop_arr.size == 0:
            return self
        mask = np.isin(self._ids, drop_arr, invert=True)
        if mask.all():
            return self
        return PositionIndex._from_sorted(self._ids[mask], self._pos[mask])

    def with_added(
        self, ids: Sequence[int], positions: Sequence[float]
    ) -> "PositionIndex":
        """A new index with ``ids`` inserted at ``positions`` — O(added + n).

        The incremental join path: the new entries are sorted among
        themselves (O(added log added)) and spliced into the existing sorted
        arrays with one ``np.insert`` each, instead of re-sorting everything.
        Entries with positions equal to existing ones land *after* them —
        the same order a fresh build with the new ids appended last yields.
        Ids already present raise ``ValueError`` (an index maps each id to
        exactly one position).
        """
        add_ids = np.asarray(ids, dtype=np.int64)
        add_pos = np.asarray(positions, dtype=np.float64)
        if add_ids.shape != add_pos.shape or add_ids.ndim != 1:
            raise ValueError("ids and positions must be equal-length 1-d sequences")
        if add_ids.size == 0:
            return self
        if add_pos.min() < 0.0 or add_pos.max() >= 1.0:
            raise ValueError("all positions must lie in [0, 1)")
        if np.unique(add_ids).size != add_ids.size:
            raise ValueError("added ids must be unique")
        if np.isin(add_ids, self._ids).any():
            raise ValueError("added ids must not already be present")
        order = np.argsort(add_pos, kind="stable")
        add_ids = add_ids[order]
        add_pos = add_pos[order]
        at = self._pos.searchsorted(add_pos, "right")
        return PositionIndex._from_sorted(
            np.insert(self._ids, at, add_ids), np.insert(self._pos, at, add_pos)
        )
