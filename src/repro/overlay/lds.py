"""The Linearized De Bruijn Swarm (LDS) — Definition 5.

Given node positions on the unit ring, the LDS connects each node ``v`` to

* **list edges** ``E_L``: every node within ring distance ``2*c*lam/n``;
* **long-distance (De Bruijn) edges** ``E_DB``: every node within distance
  ``3*c*lam/(2n)`` of ``(v + i)/2`` for ``i in {0, 1}``.

The list radius is deliberately *twice* the swarm radius and the De Bruijn
radius 1.5x: Lemma 6 (the Swarm Property) then guarantees that every node of a
swarm ``S(p)`` has edges to **all** of ``S(p/2)`` and ``S((p+1)/2)``, which is
what makes swarm-to-swarm routing survive churn.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.config import ProtocolParams
from repro.overlay.positions import PositionIndex
from repro.overlay.swarm import swarm_members
from repro.util.intervals import Arc, wrap

__all__ = ["LDSGraph", "required_neighbor_arcs", "build_lds"]


def required_neighbor_arcs(p: float, params: ProtocolParams) -> tuple[Arc, Arc, Arc]:
    """The three arcs a node at position ``p`` must be connected to.

    Returns ``(list_arc, db_arc_0, db_arc_1)`` — the neighbourhoods around
    ``p``, ``p/2`` and ``(p+1)/2`` from Definition 5.  The same arcs drive the
    maintenance algorithm's JOIN rebroadcast (Listing 3).
    """
    return (
        Arc(p, params.list_radius),
        Arc(wrap(p / 2.0), params.debruijn_radius),
        Arc(wrap((p + 1.0) / 2.0), params.debruijn_radius),
    )


class LDSGraph:
    """An LDS snapshot: positions plus the implied edge sets.

    Edges are directed "knows the id of" relations per the paper's model;
    list edges are symmetric by construction, De Bruijn edges are not.
    Neighbour sets are computed lazily and cached; :meth:`prime` fills every
    node's cache in one vectorised sorted-array sweep (two batched
    ``searchsorted`` calls per radius instead of two per node) — audits and
    whole-graph statistics use it so no per-node binary searches remain.
    """

    def __init__(self, index: PositionIndex, params: ProtocolParams) -> None:
        self.index = index
        self.params = params
        self._neighbors: dict[int, np.ndarray] = {}
        self._list_neighbors: dict[int, np.ndarray] = {}
        self._db_neighbors: dict[int, np.ndarray] = {}
        self._primed = False

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def random(
        cls, params: ProtocolParams, rng: np.random.Generator, n: int | None = None
    ) -> "LDSGraph":
        """An LDS over ``n`` nodes at i.i.d. uniform positions (ids 0..n-1)."""
        count = params.n if n is None else n
        positions = {i: float(p) for i, p in enumerate(rng.random(count))}
        return cls(PositionIndex(positions), params)

    @property
    def node_ids(self) -> np.ndarray:
        return self.index.ids

    def __len__(self) -> int:
        return len(self.index)

    # ------------------------------------------------------------------
    # Neighbourhoods
    # ------------------------------------------------------------------

    def list_neighbors(self, v: int) -> np.ndarray:
        """Ids within the list radius of ``v`` (excluding ``v`` itself)."""
        cached = self._list_neighbors.get(v)
        if cached is None:
            p = self.index.position(v)
            ids = self.index.ids_within(p, self.params.list_radius)
            cached = ids[ids != v]
            self._list_neighbors[v] = cached
        return cached

    def db_neighbors(self, v: int) -> np.ndarray:
        """Ids within the De Bruijn radius of ``v/2`` or ``(v+1)/2``."""
        cached = self._db_neighbors.get(v)
        if cached is None:
            p = self.index.position(v)
            rho = self.params.debruijn_radius
            a = self.index.ids_within(wrap(p / 2.0), rho)
            b = self.index.ids_within(wrap((p + 1.0) / 2.0), rho)
            merged = np.union1d(a, b)
            cached = merged[merged != v]
            self._db_neighbors[v] = cached
        return cached

    def neighbors(self, v: int) -> np.ndarray:
        """All out-neighbours of ``v`` (list plus De Bruijn, deduplicated)."""
        cached = self._neighbors.get(v)
        if cached is None:
            cached = np.union1d(self.list_neighbors(v), self.db_neighbors(v))
            self._neighbors[v] = cached
        return cached

    def _window(self, a: int, b: int, wrapped: bool) -> np.ndarray:
        ids = self.index.ids
        if not wrapped:
            return ids[a:b]
        return np.concatenate([ids[a:], ids[:b]])

    def prime(self) -> None:
        """Bulk warm-up: fill all three neighbour caches in one sweep."""
        if self._primed:
            return
        self._primed = True
        index = self.index
        ids = index.ids
        pos = index.sorted_positions
        n = ids.size
        if n == 0:
            return
        params = self.params
        rho_l = params.list_radius
        rho_db = params.debruijn_radius
        full = ids  # position order, as ids_within returns for radius >= 0.5
        if rho_l < 0.5:
            la, lb, lw = index.bounds_many(pos, rho_l)
        if rho_db < 0.5:
            # wrap() is the identity here: p/2 lies in [0, 0.5) and
            # (p+1)/2 in [0.5, 1) for p in [0, 1).
            d0a, d0b, d0w = index.bounds_many(pos / 2.0, rho_db)
            d1a, d1b, d1w = index.bounds_many((pos + 1.0) / 2.0, rho_db)
        list_cache = self._list_neighbors
        db_cache = self._db_neighbors
        nbr_cache = self._neighbors
        for i in range(n):
            v = int(ids[i])
            lst = full if rho_l >= 0.5 else self._window(la[i], lb[i], lw[i])
            lst = lst[lst != v]
            if rho_db >= 0.5:
                merged = np.union1d(full, full)
            else:
                merged = np.union1d(
                    self._window(d0a[i], d0b[i], d0w[i]),
                    self._window(d1a[i], d1b[i], d1w[i]),
                )
            db = merged[merged != v]
            list_cache[v] = lst
            db_cache[v] = db
            nbr_cache[v] = np.union1d(lst, db)

    def swarm(self, p: float) -> np.ndarray:
        """Ids of ``S(p)`` in this snapshot."""
        return swarm_members(self.index, p, self.params)

    def degree(self, v: int) -> int:
        return int(self.neighbors(v).size)

    def degree_stats(self) -> tuple[int, float, int]:
        """(min, mean, max) out-degree over all nodes (primes the caches)."""
        if len(self.index) == 0:
            return (0, 0.0, 0)
        self.prime()
        degs = np.fromiter(
            (nbrs.size for nbrs in self._neighbors.values()),
            dtype=np.int64,
            count=len(self._neighbors),
        )
        return (int(degs.min()), float(np.mean(degs)), int(degs.max()))

    def edge_count(self) -> int:
        """Number of directed edges (primes the caches)."""
        self.prime()
        return int(sum(nbrs.size for nbrs in self._neighbors.values()))

    # ------------------------------------------------------------------
    # Audits
    # ------------------------------------------------------------------

    def check_swarm_property(self, points: Iterable[float]) -> bool:
        """Empirically verify Lemma 6 at the given points.

        For each point ``p``: every node of ``S(p)`` must have an edge to
        every node of ``S(p/2)`` and of ``S((p+1)/2)`` (itself counting as
        trivially reached).  Membership tests run as one ``np.isin`` per
        node instead of rebuilding Python sets.
        """
        self.prime()
        for p in points:
            members = self.swarm(p)
            for branch in (0, 1):
                target = self.swarm(wrap((p + branch) / 2.0))
                if target.size == 0:
                    continue
                for v in members:
                    v = int(v)
                    covered = np.isin(target, self.neighbors(v)) | (target == v)
                    if not covered.all():
                        return False
        return True

    def audit_claimed_adjacency(
        self, claimed: Mapping[int, AbstractSetLike]
    ) -> dict[int, set[int]]:
        """Compare claimed neighbour sets against Definition 5.

        Returns, per node, the set of *missing* required neighbours (empty
        everywhere means the claimed overlay covers the LDS).  Used to audit
        overlays built by the maintenance algorithm against ground truth.
        """
        self.prime()
        missing: dict[int, set[int]] = {}
        for v in self.node_ids:
            v = int(v)
            required = self.neighbors(v)
            have = claimed.get(v, ())
            if isinstance(have, np.ndarray):
                have_arr = have.astype(np.int64, copy=False)
            else:
                have_arr = np.fromiter((int(w) for w in have), dtype=np.int64)
            if have_arr.size:
                gap = required[~np.isin(required, have_arr)]
            else:
                gap = required
            if gap.size:
                missing[v] = set(gap.tolist())
        return missing


# ``Mapping[int, set[int] | frozenset[int] | np.ndarray]`` — anything iterable.
AbstractSetLike = Iterable[int]


def build_lds(
    positions: "Mapping[int, float] | PositionIndex", params: ProtocolParams
) -> LDSGraph:
    """Convenience constructor from an id -> position mapping.

    A prebuilt :class:`PositionIndex` — e.g. an interned view handed out by
    the engine's :class:`~repro.sim.epochs.EpochCache` — is used as-is, so
    audits can share the epoch's sorted arrays instead of re-sorting them.
    """
    if isinstance(positions, PositionIndex):
        return LDSGraph(positions, params)
    return LDSGraph(PositionIndex(positions), params)
