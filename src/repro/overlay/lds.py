"""The Linearized De Bruijn Swarm (LDS) — Definition 5.

Given node positions on the unit ring, the LDS connects each node ``v`` to

* **list edges** ``E_L``: every node within ring distance ``2*c*lam/n``;
* **long-distance (De Bruijn) edges** ``E_DB``: every node within distance
  ``3*c*lam/(2n)`` of ``(v + i)/2`` for ``i in {0, 1}``.

The list radius is deliberately *twice* the swarm radius and the De Bruijn
radius 1.5x: Lemma 6 (the Swarm Property) then guarantees that every node of a
swarm ``S(p)`` has edges to **all** of ``S(p/2)`` and ``S((p+1)/2)``, which is
what makes swarm-to-swarm routing survive churn.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.config import ProtocolParams
from repro.overlay.positions import PositionIndex
from repro.overlay.swarm import swarm_members
from repro.util.intervals import Arc, wrap

__all__ = ["LDSGraph", "required_neighbor_arcs", "build_lds"]


def required_neighbor_arcs(p: float, params: ProtocolParams) -> tuple[Arc, Arc, Arc]:
    """The three arcs a node at position ``p`` must be connected to.

    Returns ``(list_arc, db_arc_0, db_arc_1)`` — the neighbourhoods around
    ``p``, ``p/2`` and ``(p+1)/2`` from Definition 5.  The same arcs drive the
    maintenance algorithm's JOIN rebroadcast (Listing 3).
    """
    return (
        Arc(p, params.list_radius),
        Arc(wrap(p / 2.0), params.debruijn_radius),
        Arc(wrap((p + 1.0) / 2.0), params.debruijn_radius),
    )


class LDSGraph:
    """An LDS snapshot: positions plus the implied edge sets.

    Edges are directed "knows the id of" relations per the paper's model;
    list edges are symmetric by construction, De Bruijn edges are not.
    Neighbour sets are computed lazily and cached.
    """

    def __init__(self, index: PositionIndex, params: ProtocolParams) -> None:
        self.index = index
        self.params = params
        self._neighbors: dict[int, np.ndarray] = {}
        self._list_neighbors: dict[int, np.ndarray] = {}
        self._db_neighbors: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def random(
        cls, params: ProtocolParams, rng: np.random.Generator, n: int | None = None
    ) -> "LDSGraph":
        """An LDS over ``n`` nodes at i.i.d. uniform positions (ids 0..n-1)."""
        count = params.n if n is None else n
        positions = {i: float(p) for i, p in enumerate(rng.random(count))}
        return cls(PositionIndex(positions), params)

    @property
    def node_ids(self) -> np.ndarray:
        return self.index.ids

    def __len__(self) -> int:
        return len(self.index)

    # ------------------------------------------------------------------
    # Neighbourhoods
    # ------------------------------------------------------------------

    def list_neighbors(self, v: int) -> np.ndarray:
        """Ids within the list radius of ``v`` (excluding ``v`` itself)."""
        cached = self._list_neighbors.get(v)
        if cached is None:
            p = self.index.position(v)
            ids = self.index.ids_within(p, self.params.list_radius)
            cached = ids[ids != v]
            self._list_neighbors[v] = cached
        return cached

    def db_neighbors(self, v: int) -> np.ndarray:
        """Ids within the De Bruijn radius of ``v/2`` or ``(v+1)/2``."""
        cached = self._db_neighbors.get(v)
        if cached is None:
            p = self.index.position(v)
            rho = self.params.debruijn_radius
            a = self.index.ids_within(wrap(p / 2.0), rho)
            b = self.index.ids_within(wrap((p + 1.0) / 2.0), rho)
            merged = np.union1d(a, b)
            cached = merged[merged != v]
            self._db_neighbors[v] = cached
        return cached

    def neighbors(self, v: int) -> np.ndarray:
        """All out-neighbours of ``v`` (list plus De Bruijn, deduplicated)."""
        cached = self._neighbors.get(v)
        if cached is None:
            cached = np.union1d(self.list_neighbors(v), self.db_neighbors(v))
            self._neighbors[v] = cached
        return cached

    def swarm(self, p: float) -> np.ndarray:
        """Ids of ``S(p)`` in this snapshot."""
        return swarm_members(self.index, p, self.params)

    def degree(self, v: int) -> int:
        return int(self.neighbors(v).size)

    def degree_stats(self) -> tuple[int, float, int]:
        """(min, mean, max) out-degree over all nodes."""
        degs = [self.degree(int(v)) for v in self.node_ids]
        if not degs:
            return (0, 0.0, 0)
        return (min(degs), float(np.mean(degs)), max(degs))

    def edge_count(self) -> int:
        """Number of directed edges."""
        return int(sum(self.degree(int(v)) for v in self.node_ids))

    # ------------------------------------------------------------------
    # Audits
    # ------------------------------------------------------------------

    def check_swarm_property(self, points: Iterable[float]) -> bool:
        """Empirically verify Lemma 6 at the given points.

        For each point ``p``: every node of ``S(p)`` must have an edge to
        every node of ``S(p/2)`` and of ``S((p+1)/2)``.
        """
        for p in points:
            members = self.swarm(p)
            for branch in (0, 1):
                target = self.swarm(wrap((p + branch) / 2.0))
                target_set = set(int(t) for t in target)
                for v in members:
                    nbrs = set(int(w) for w in self.neighbors(int(v)))
                    nbrs.add(int(v))  # a node trivially "reaches" itself
                    if not target_set <= nbrs:
                        return False
        return True

    def audit_claimed_adjacency(
        self, claimed: Mapping[int, AbstractSetLike]
    ) -> dict[int, set[int]]:
        """Compare claimed neighbour sets against Definition 5.

        Returns, per node, the set of *missing* required neighbours (empty
        everywhere means the claimed overlay covers the LDS).  Used to audit
        overlays built by the maintenance algorithm against ground truth.
        """
        missing: dict[int, set[int]] = {}
        for v in self.node_ids:
            v = int(v)
            required = set(int(w) for w in self.neighbors(v))
            have = set(int(w) for w in claimed.get(v, ()))
            gap = required - have
            if gap:
                missing[v] = gap
        return missing


# ``Mapping[int, set[int] | frozenset[int] | np.ndarray]`` — anything iterable.
AbstractSetLike = Iterable[int]


def build_lds(
    positions: Mapping[int, float], params: ProtocolParams
) -> LDSGraph:
    """Convenience constructor from an id -> position mapping."""
    return LDSGraph(PositionIndex(positions), params)
