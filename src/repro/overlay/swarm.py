"""Swarms — the logarithmic-size quorums that replace single nodes.

For a point ``p`` the *swarm* ``S(p)`` is the set of nodes within ring distance
``c*lam/n`` of ``p`` (Section 3).  Swarms, not nodes, are the unit of the
paper's routing and maintenance: a message is held by a swarm, and the overlay
stays routable as long as every swarm is *good* — at least a ``3/4`` fraction
of its members survive into the next round (Definition 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Callable

import numpy as np

from repro.config import ProtocolParams
from repro.overlay.positions import PositionIndex
from repro.util.intervals import Arc

__all__ = ["swarm_arc", "swarm_members", "SwarmStats", "audit_goodness"]


def swarm_arc(p: float, params: ProtocolParams) -> Arc:
    """The arc covered by swarm ``S(p)``."""
    return Arc(p, params.swarm_radius)


def swarm_members(
    index: PositionIndex, p: float, params: ProtocolParams
) -> np.ndarray:
    """Ids of all nodes in ``S(p)`` under the given position snapshot."""
    return index.ids_within(p, params.swarm_radius)


@dataclass(frozen=True)
class SwarmStats:
    """Aggregate swarm statistics over a position snapshot.

    ``min_size``/``max_size`` are taken over the swarms of *every node
    position* (a standard epsilon-net argument: if every node-centred swarm is
    large enough, so is every point-centred swarm up to one radius of slack).
    ``min_good_fraction`` additionally needs a survivor predicate.
    """

    count: int
    min_size: int
    max_size: int
    mean_size: float
    min_good_fraction: float

    @property
    def all_nonempty(self) -> bool:
        return self.count == 0 or self.min_size > 0


def audit_goodness(
    index: PositionIndex,
    params: ProtocolParams,
    survives: Callable[[int], bool] | AbstractSet[int] | None = None,
    centers: np.ndarray | None = None,
) -> SwarmStats:
    """Measure swarm sizes and goodness over a snapshot.

    Parameters
    ----------
    survives:
        Either a predicate or a set of node ids that remain alive two rounds
        later (Definition 8 requires ``|S_t(p) ∩ V_{t+2}| >= 3/4 |S_t(p)|``).
        ``None`` means "everyone survives".
    centers:
        Points at which to evaluate swarms; defaults to every node position
        plus the midpoints between ring-adjacent nodes (a finite set that
        witnesses the extremes over all ``p in [0, 1)``: swarm membership only
        changes when ``p`` crosses a point at distance exactly ``c*lam/n``
        from some node, and between consecutive breakpoints the swarm is
        constant — node positions and adjacent midpoints hit every such cell).
    """
    pos = index.sorted_positions
    if centers is None:
        if pos.size == 0:
            return SwarmStats(0, 0, 0, 0.0, 1.0)
        mids = (pos + np.diff(np.concatenate([pos, [pos[0] + 1.0]])) / 2.0) % 1.0
        centers = np.concatenate([pos, mids])

    if survives is None:
        is_good = None
    elif callable(survives):
        is_good = {int(i) for i in index.ids if survives(int(i))}
    else:
        is_good = {int(i) for i in index.ids if int(i) in survives}

    min_size = np.inf
    max_size = 0
    total = 0
    min_frac = 1.0
    for p in centers:
        members = swarm_members(index, float(p), params)
        size = members.size
        min_size = min(min_size, size)
        max_size = max(max_size, size)
        total += size
        if is_good is not None and size > 0:
            good = sum(1 for m in members if int(m) in is_good)
            min_frac = min(min_frac, good / size)
    count = len(centers)
    mean = total / count if count else 0.0
    if min_size is np.inf:
        min_size = 0
    return SwarmStats(
        count=count,
        min_size=int(min_size),
        max_size=int(max_size),
        mean_size=float(mean),
        min_good_fraction=float(min_frac),
    )
