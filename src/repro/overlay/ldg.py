"""The classical Linearized De Bruijn Graph (LDG) — the baseline topology.

After Richa, Scheideler and Stevens (SSS 2011): each node connects to its
immediate ring predecessor and successor (linearisation) and to the node
closest to ``v/2`` and to ``(v+1)/2`` (De Bruijn edges).  Constant degree, no
swarms, no redundancy — the natural baseline against which the LDS's churn
resistance is demonstrated: a single churned-out node on a route breaks
delivery, and an up-to-date adversary can cut the ring.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.overlay.positions import PositionIndex
from repro.util.intervals import wrap

__all__ = ["LDGGraph"]


class LDGGraph:
    """A classical LDG snapshot over a position table."""

    def __init__(self, index: PositionIndex) -> None:
        if len(index) < 3:
            raise ValueError("LDG needs at least 3 nodes")
        self.index = index
        self._neighbors: dict[int, tuple[int, ...]] = {}

    @classmethod
    def from_positions(cls, positions: Mapping[int, float]) -> "LDGGraph":
        return cls(PositionIndex(positions))

    @classmethod
    def random(cls, n: int, rng: np.random.Generator) -> "LDGGraph":
        return cls.from_positions({i: float(p) for i, p in enumerate(rng.random(n))})

    @property
    def node_ids(self) -> np.ndarray:
        return self.index.ids

    def __len__(self) -> int:
        return len(self.index)

    def ring_successor(self, v: int) -> int:
        """The node immediately clockwise of ``v``."""
        ids = self.index.ids
        i = int(np.nonzero(ids == v)[0][0])
        return int(ids[(i + 1) % ids.size])

    def ring_predecessor(self, v: int) -> int:
        """The node immediately counter-clockwise of ``v``."""
        ids = self.index.ids
        i = int(np.nonzero(ids == v)[0][0])
        return int(ids[(i - 1) % ids.size])

    def neighbors(self, v: int) -> tuple[int, ...]:
        """Ring predecessor/successor plus the two De Bruijn contacts."""
        cached = self._neighbors.get(v)
        if cached is None:
            p = self.index.position(v)
            out = {
                self.ring_predecessor(v),
                self.ring_successor(v),
                self.index.closest(wrap(p / 2.0)),
                self.index.closest(wrap((p + 1.0) / 2.0)),
            }
            out.discard(v)
            cached = tuple(sorted(out))
            self._neighbors[v] = cached
        return cached

    def degree_stats(self) -> tuple[int, float, int]:
        degs = [len(self.neighbors(int(v))) for v in self.node_ids]
        return (min(degs), float(np.mean(degs)), max(degs))
