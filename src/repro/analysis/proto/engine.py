"""The proto-check engine: parse, extract, check against the spec, report.

``run_proto_check`` is the fourth sibling of
:func:`repro.analysis.lint.run_lint`, :func:`repro.analysis.flow.run_flow`
and :func:`repro.analysis.shard.run_shard_check`, and shares their
machinery through :mod:`repro.analysis.common`: the same
:class:`~repro.analysis.lint.engine.SourceModule` construction through a
shared :class:`~repro.analysis.source_cache.SourceCache` (one parse
serves all four tools), the same ``# repro: allow(<rule>): <why>``
inline waivers (``protocol-*`` prefixed — the linter's W2 skips them and
this engine audits their staleness), the same
``(path, rule, message)``-multiset baseline format
(``proto-baseline.json``), and the same
:class:`~repro.analysis.lint.findings.Finding` value object that feeds
the shared SARIF emitter.

The run has three phases:

1. parse every file and index the call graph (:class:`ProjectIndex`,
   shared with flow and shard via the ``index`` argument);
2. load the declarative spec (``protocol-spec.json`` at the root by
   default) and extract the implemented protocol
   (:class:`~repro.analysis.proto.extract.ProtocolModel`);
3. one reporting pass running rules P1–P6, matching ``protocol-*``
   waivers, auditing stale ones, and applying the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

from repro.analysis.common import (
    apply_baseline,
    match_prefix_waivers,
    parse_modules,
    resolve_targets,
)
from repro.analysis.flow.callgraph import ProjectIndex
from repro.analysis.lint.baseline import Baseline
from repro.analysis.lint.findings import Finding
from repro.analysis.lint.waivers import PROTO_RULE_PREFIX
from repro.analysis.proto.extract import ProtocolModel
from repro.analysis.proto.rules import (
    ALL_PROTO_RULES,
    ProtoContext,
    ProtoRule,
)
from repro.analysis.proto.spec import (
    DEFAULT_SPEC_NAME,
    ProtocolSpec,
    load_spec,
)
from repro.analysis.source_cache import SourceCache

__all__ = [
    "DEFAULT_PROTO_BASELINE_NAME",
    "ProtoReport",
    "run_proto_check",
]

#: File name looked up at the repository root by default.
DEFAULT_PROTO_BASELINE_NAME = "proto-baseline.json"


@dataclass
class ProtoReport:
    """Everything one proto-check run produced."""

    root: Path
    files: int
    functions: int
    spec: ProtocolSpec
    protocol: dict
    rules: tuple
    findings: list = field(default_factory=list)
    waived: list = field(default_factory=list)
    baselined: list = field(default_factory=list)
    stale_baseline: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "root": str(self.root),
            "files": self.files,
            "functions": self.functions,
            "spec": {
                "relpath": self.spec.relpath,
                "messages": len(self.spec.messages),
                "payloads": len(self.spec.payloads),
            },
            "protocol": dict(self.protocol),
            "rules": [r.id for r in self.rules],
            "counts": {
                "active": len(self.findings),
                "waived": len(self.waived),
                "baselined": len(self.baselined),
                "stale_baseline": len(self.stale_baseline),
            },
            "findings": [f.to_dict() for f in self.findings],
            "waived": [f.to_dict() for f in self.waived],
            "baselined": [f.to_dict() for f in self.baselined],
            "stale_baseline": self.stale_baseline,
        }

    def format_text(self) -> str:
        out: list[str] = []
        for f in self.findings:
            out.append(f.format())
            if f.fix_hint:
                out.append(f"    fix: {f.fix_hint}")
        for entry in self.stale_baseline:
            out.append(
                f"stale baseline entry: {entry['path']} [{entry['rule']}] "
                "no longer matches anything — remove it"
            )
        p = self.protocol
        out.append(
            f"{self.files} file(s), {self.functions} function(s), "
            f"{p['messages']} message type(s) / {p['dispatch_entries']} "
            f"dispatch entr(ies) / {p['constructions']} construction "
            f"site(s): {len(self.findings)} finding(s), "
            f"{len(self.waived)} waived, {len(self.baselined)} baselined"
        )
        return "\n".join(out)


def run_proto_check(
    paths: Iterable[Path | str] | None = None,
    *,
    root: Path | str | None = None,
    rules: Iterable[ProtoRule] | None = None,
    baseline: Path | str | Baseline | None = None,
    cache: SourceCache | None = None,
    index: ProjectIndex | None = None,
    spec: Path | str | Mapping | ProtocolSpec | None = None,
) -> ProtoReport:
    """Run the protocol analyzer and return a :class:`ProtoReport`.

    Arguments mirror :func:`~repro.analysis.lint.run_lint`; ``spec`` may
    be a path, a pre-parsed mapping, or a :class:`ProtocolSpec`, and
    defaults to ``protocol-spec.json`` at the root.  Pass the same
    ``cache``/``index`` as the other engines to parse and index once
    (the umbrella ``repro check`` command does).
    """
    rules = tuple(rules) if rules is not None else ALL_PROTO_RULES
    root, files = resolve_targets(paths, root)
    if spec is None:
        spec = load_spec(root / DEFAULT_SPEC_NAME)
    elif isinstance(spec, (Path, str)):
        spec = load_spec(spec)
    elif isinstance(spec, Mapping):
        spec = ProtocolSpec.from_dict(spec)
    if cache is None:
        cache = SourceCache(root)

    modules, active = parse_modules(files, cache, root)
    if index is None:
        index = ProjectIndex(modules)
    model = ProtocolModel(modules, index, spec)
    ctx = ProtoContext(model=model, spec=spec)

    raw_by_module: dict[str, list[Finding]] = {mod.relpath: [] for mod in modules}
    spec_level: list[Finding] = []
    for rule in rules:
        for f in rule.check(ctx):
            if f.path in raw_by_module:
                raw_by_module[f.path].append(f)
            elif f.path == spec.relpath:
                # Spec-side findings (missing implementations) have no
                # module to carry waivers; they are always active.
                spec_level.append(f)
            else:
                raw_by_module.setdefault(f.path, []).append(f)

    waived = match_prefix_waivers(
        modules,
        raw_by_module,
        prefix=PROTO_RULE_PREFIX,
        rule_ids={r.id for r in rules},
        audit_all=rules == ALL_PROTO_RULES,
        engine="proto",
        active=active,
    )
    active.extend(spec_level)
    final, baselined, stale = apply_baseline(active, waived, baseline)
    return ProtoReport(
        root=root,
        files=len(files),
        functions=len(index.functions),
        spec=spec,
        protocol=model.summary(),
        rules=rules,
        findings=final,
        waived=waived,
        baselined=baselined,
        stale_baseline=stale,
    )
