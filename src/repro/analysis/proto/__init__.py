"""``repro.analysis.proto`` — the protocol state-machine & contract analyzer.

The fourth whole-project engine (after ``repro lint``, ``repro flow``
and ``repro shard-check``): it *extracts* the implemented protocol from
the AST — message classes, the ``on_round`` dispatch table, construction
sites with their lifecycle-phase contexts, routed-payload tags, hop-step
/ TTL / epoch writes — and *checks* it against the committed declarative
spec ``protocol-spec.json`` (rules P1–P6).

Run it as ``repro proto-check`` (see ``docs/ANALYSIS.md``), or from code::

    from repro.analysis.proto import run_proto_check
    report = run_proto_check(root=repo_root)   # spec: protocol-spec.json
    assert report.ok, report.format_text()

Findings can be waived inline (``# repro: allow(protocol-…): <why>``)
or grandfathered in the committed ``proto-baseline.json``.
"""

from repro.analysis.proto.engine import (
    DEFAULT_PROTO_BASELINE_NAME,
    ProtoReport,
    run_proto_check,
)
from repro.analysis.proto.extract import (
    SEND_APIS,
    CodecInfo,
    ConstructionSite,
    ConsumerSite,
    DispatchEntry,
    EpochWrite,
    FieldInfo,
    MessageClass,
    NodeClass,
    PayloadSite,
    PayloadTagCheck,
    ProtocolModel,
    SendSite,
    StepWrite,
    TtlWrite,
)
from repro.analysis.proto.phases import (
    ALL_PHASES,
    ClassPhases,
    FunctionPhases,
    phase_of_attr,
)
from repro.analysis.proto.rules import (
    ALL_PROTO_RULES,
    EpochMonotoneRule,
    FieldDriftRule,
    PhaseViolationRule,
    ProtoContext,
    ProtoRule,
    SpecCoverageRule,
    StepBoundRule,
    UnhandledMessageRule,
    proto_rule_table,
    resolve_proto_rules,
)
from repro.analysis.proto.spec import (
    DEFAULT_SPEC_NAME,
    PHASES,
    SPEC_SCHEMA,
    CodecSpec,
    EpochSpec,
    HopSpec,
    MessageSpec,
    PayloadSpec,
    ProtocolSpec,
    TtlSpec,
    contract_markdown,
    load_spec,
    norm_expr,
)

__all__ = [
    "ALL_PHASES",
    "ALL_PROTO_RULES",
    "ClassPhases",
    "CodecInfo",
    "CodecSpec",
    "ConstructionSite",
    "ConsumerSite",
    "DEFAULT_PROTO_BASELINE_NAME",
    "DEFAULT_SPEC_NAME",
    "DispatchEntry",
    "EpochMonotoneRule",
    "EpochSpec",
    "EpochWrite",
    "FieldDriftRule",
    "FieldInfo",
    "FunctionPhases",
    "HopSpec",
    "MessageClass",
    "MessageSpec",
    "NodeClass",
    "PHASES",
    "PayloadSite",
    "PayloadSpec",
    "PayloadTagCheck",
    "PhaseViolationRule",
    "ProtoContext",
    "ProtoReport",
    "ProtoRule",
    "ProtocolModel",
    "ProtocolSpec",
    "SEND_APIS",
    "SPEC_SCHEMA",
    "SendSite",
    "SpecCoverageRule",
    "StepBoundRule",
    "StepWrite",
    "TtlSpec",
    "TtlWrite",
    "UnhandledMessageRule",
    "contract_markdown",
    "load_spec",
    "norm_expr",
    "phase_of_attr",
    "proto_rule_table",
    "resolve_proto_rules",
    "run_proto_check",
]
