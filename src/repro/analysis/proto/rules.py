"""Protocol contract rules P1–P6.

Each rule compares one aspect of the extracted
:class:`~repro.analysis.proto.extract.ProtocolModel` (the *implemented*
protocol) against the committed
:class:`~repro.analysis.proto.spec.ProtocolSpec` (the *paper's*
contract).  Like the other engines' rules these are syntactic and
deliberately over-approximate on the evidence side, but every finding
names the spec clause (and its PAPER.md/DESIGN.md anchor) it violates —
a proto finding is an argument, not a style nit.

Findings reuse the linter's :class:`~repro.analysis.lint.findings.Finding`
value object, the ``# repro: allow(protocol-…): why`` waiver syntax, and
the shared baseline format.
"""

from __future__ import annotations

import abc
import ast
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.analysis.lint.engine import SourceModule
from repro.analysis.lint.findings import Finding
from repro.analysis.proto.extract import ProtocolModel, StepWrite
from repro.analysis.proto.spec import PHASES, ProtocolSpec, norm_expr

__all__ = [
    "ALL_PROTO_RULES",
    "ProtoContext",
    "ProtoRule",
    "UnhandledMessageRule",
    "PhaseViolationRule",
    "FieldDriftRule",
    "StepBoundRule",
    "EpochMonotoneRule",
    "SpecCoverageRule",
    "resolve_proto_rules",
    "proto_rule_table",
]


@dataclass
class ProtoContext:
    """Everything a proto rule can see: the model and the spec."""

    model: ProtocolModel
    spec: ProtocolSpec


class ProtoRule(abc.ABC):
    """One protocol contract check; mirrors the lint ``Rule`` surface."""

    id: str = ""
    code: str = ""
    description: str = ""
    fix_hint: str = ""
    severity: str = "error"

    @abc.abstractmethod
    def check(self, ctx: ProtoContext) -> Iterator[Finding]:
        """Yield findings over the whole project."""

    def finding(
        self,
        mod: SourceModule | str,
        where: ast.AST | int,
        message: str,
        fix_hint: str | None = None,
    ) -> Finding:
        line = where if isinstance(where, int) else getattr(where, "lineno", 0)
        path = mod if isinstance(mod, str) else mod.relpath
        return Finding(
            path=path,
            line=line,
            rule=self.id,
            message=message,
            severity=self.severity,
            fix_hint=self.fix_hint if fix_hint is None else fix_hint,
        )


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------


def _fmt_phases(phases: Iterable[str]) -> str:
    ordered = [p for p in PHASES if p in set(phases)]
    if tuple(ordered) == PHASES:
        return "any"
    return "{" + ", ".join(ordered) + "}" if ordered else "{}"


def _deref(
    expr: ast.expr, bindings: dict[str, ast.expr], depth: int = 3
) -> ast.expr:
    """Follow simple ``name = expr`` bindings a few hops."""
    while (
        depth > 0
        and isinstance(expr, ast.Name)
        and expr.id in bindings
        and bindings[expr.id] is not expr
    ):
        expr = bindings[expr.id]
        depth -= 1
    return expr


def _loop_target_names(func: ast.AST) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            for n in ast.walk(node.target):
                if isinstance(n, ast.Name):
                    names.add(n.id)
        elif isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp, ast.DictComp)):
            for comp in node.generators:
                for n in ast.walk(comp.target):
                    if isinstance(n, ast.Name):
                        names.add(n.id)
    return names


def _param_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    a = func.args
    names = {p.arg for p in a.posonlyargs + a.args + a.kwonlyargs}
    if a.vararg:
        names.add(a.vararg.arg)
    if a.kwarg:
        names.add(a.kwarg.arg)
    return names


def _has_bound_compare(scope: ast.AST | None, bound: str) -> bool:
    """Any comparison in ``scope`` mentioning the spec'd bound name."""
    if scope is None:
        return False
    for node in ast.walk(scope):
        if isinstance(node, ast.Compare) and bound in ast.unparse(node):
            return True
    return False


def _mentions_self(expr: ast.expr) -> bool:
    return any(
        isinstance(n, ast.Name) and n.id == "self" for n in ast.walk(expr)
    )


# ----------------------------------------------------------------------
# P1 — every constructed message is dispatched (and vice versa)
# ----------------------------------------------------------------------


class UnhandledMessageRule(ProtoRule):
    """P1 — constructed messages must be dispatched; dispatch must be live."""

    id = "protocol-unhandled-message"
    code = "P1"
    description = (
        "a dispatched-kind message that is constructed but appears in no node "
        "dispatch table silently drops on delivery; a dispatch entry (or "
        "payload-tag test) matching no construction site is dead protocol"
    )
    fix_hint = (
        "add the message to the on_round dispatch dict (or an on_* handler), "
        "or delete the dead entry"
    )

    def check(self, ctx: ProtoContext) -> Iterator[Finding]:
        handled = {d.message for d in ctx.model.dispatch}
        constructed = {c.message for c in ctx.model.constructions}
        reported: set[tuple[str, str, int]] = set()
        for site in ctx.model.constructions:
            entry = ctx.spec.message(site.message)
            if entry is not None and not entry.dispatched:
                continue  # records ride inside other messages
            if site.message in handled:
                continue
            key = (site.module.relpath, site.message, site.lineno)
            if key in reported:
                continue
            reported.add(key)
            yield self.finding(
                site.module,
                site.lineno,
                f"`{site.message}` is constructed here but no node "
                "dispatches it (no dispatch-dict entry or on_* handler)",
            )
        for entry in ctx.model.dispatch:
            if entry.message not in constructed:
                yield self.finding(
                    entry.module,
                    entry.lineno,
                    f"dispatch entry for `{entry.message}` is dead: "
                    "nothing constructs that message",
                )
        # Routed payload tags: emitted tags must be tested somewhere.
        tested = {t.tag for t in ctx.model.payload_checks}
        emitted = {p.tag for p in ctx.model.payload_sites}
        seen_tags: set[tuple[str, str, int]] = set()
        for site in ctx.model.payload_sites:
            if site.tag in tested:
                continue
            key = (site.module.relpath, site.tag, site.lineno)
            if key in seen_tags:
                continue
            seen_tags.add(key)
            yield self.finding(
                site.module,
                site.lineno,
                f'routed payload tag "{site.tag}" is emitted here but '
                "never tested at any delivery site",
            )
        for check in ctx.model.payload_checks:
            if check.tag not in emitted:
                yield self.finding(
                    check.module,
                    check.lineno,
                    f'payload tag "{check.tag}" is tested here but '
                    "nothing emits it",
                )


# ----------------------------------------------------------------------
# P2 — phase discipline at producer and consumer sites
# ----------------------------------------------------------------------


class PhaseViolationRule(ProtoRule):
    """P2 — sends/handles happen only in the spec'd lifecycle phases."""

    id = "protocol-phase-violation"
    code = "P2"
    description = (
        "a message constructed (or a routed payload emitted) in a phase "
        "context outside the spec's producer phases, or handed to a handler "
        "outside its consumer phases — e.g. a FRESH node emitting "
        "ESTABLISHED-only maintenance traffic"
    )
    fix_hint = (
        "guard the site with the spec'd `self.phase` check, or correct the "
        "spec with a DESIGN.md citation"
    )

    def check(self, ctx: ProtoContext) -> Iterator[Finding]:
        for site in ctx.model.constructions:
            entry = ctx.spec.message(site.message)
            if entry is None or site.phases is None or not site.phases:
                continue
            allowed = frozenset(entry.producer_phases)
            extra = site.phases - allowed
            if extra:
                yield self.finding(
                    site.module,
                    site.lineno,
                    f"`{site.message}` constructed in phase context "
                    f"{_fmt_phases(site.phases)} but the spec allows "
                    f"producers only in {_fmt_phases(allowed)} "
                    f"[{entry.anchor}]",
                )
        for site in ctx.model.payload_sites:
            entry = ctx.spec.payload(site.tag)
            if entry is None or site.phases is None or not site.phases:
                continue
            allowed = frozenset(entry.producer_phases)
            if site.phases - allowed:
                yield self.finding(
                    site.module,
                    site.lineno,
                    f'routed payload "{site.tag}" emitted in phase context '
                    f"{_fmt_phases(site.phases)} but the spec allows "
                    f"{_fmt_phases(allowed)} [{entry.anchor}]",
                )
        for consumer in ctx.model.consumers:
            entry = ctx.spec.message(consumer.message)
            if entry is None or not consumer.phases:
                continue
            allowed = frozenset(entry.consumer_phases)
            if consumer.phases - allowed:
                yield self.finding(
                    consumer.module,
                    consumer.lineno,
                    f"`{consumer.message}` handed to {consumer.handler} in "
                    f"phase context {_fmt_phases(consumer.phases)} but the "
                    f"spec allows consumers only in {_fmt_phases(allowed)} "
                    f"[{entry.anchor}]",
                )


# ----------------------------------------------------------------------
# P3 — field agreement: spec <-> dataclass <-> constructor calls <-> codec
# ----------------------------------------------------------------------


class FieldDriftRule(ProtoRule):
    """P3 — spec fields, dataclass fields and constructor calls agree."""

    id = "protocol-field-drift"
    code = "P3"
    description = (
        "the spec's field list, the dataclass definition, and every "
        "constructor call must agree (names, order, required fields); the "
        "exchange codec's pack/unpack arity must match the spec wire tuple"
    )
    fix_hint = "update the spec and the dataclass together, citing DESIGN.md"

    def check(self, ctx: ProtoContext) -> Iterator[Finding]:
        for name in sorted(ctx.model.registry):
            impl = ctx.model.registry[name]
            entry = ctx.spec.message(name)
            if entry is None:
                continue  # P6's business
            impl_fields = tuple(f.name for f in impl.fields)
            if impl_fields != tuple(entry.fields):
                yield self.finding(
                    impl.module,
                    impl.lineno,
                    f"`{name}` fields ({', '.join(impl_fields) or 'none'}) "
                    f"drift from the spec ({', '.join(entry.fields) or 'none'}) "
                    f"[{entry.anchor}]",
                )
        for site in ctx.model.constructions:
            impl = ctx.model.registry.get(site.message)
            if impl is None:
                continue
            yield from self._check_call(site, impl)
        yield from self._check_codec(ctx)

    def _check_call(self, site, impl) -> Iterator[Finding]:
        fields = impl.fields
        names = [f.name for f in fields]
        call = site.call
        if any(isinstance(a, ast.Starred) for a in call.args) or any(
            kw.arg is None for kw in call.keywords
        ):
            return  # *args/**kwargs: not statically checkable
        if len(call.args) > len(fields):
            yield self.finding(
                site.module,
                site.lineno,
                f"`{site.message}` constructed with {len(call.args)} "
                f"positional args but it has {len(fields)} fields",
            )
            return
        provided = set(names[: len(call.args)])
        for kw in call.keywords:
            if kw.arg not in names:
                yield self.finding(
                    site.module,
                    site.lineno,
                    f"`{site.message}` constructed with unknown field "
                    f"`{kw.arg}` (fields: {', '.join(names)})",
                )
            else:
                provided.add(kw.arg)
        for f in fields:
            if not f.has_default and f.name not in provided:
                yield self.finding(
                    site.module,
                    site.lineno,
                    f"`{site.message}` constructed without required field "
                    f"`{f.name}`",
                )

    def _check_codec(self, ctx: ProtoContext) -> Iterator[Finding]:
        info = ctx.model.codec
        hops = ctx.spec.hops
        if info is None or hops is None or info.source_module is None:
            return
        width = len(hops.wire_tuple)
        mod = info.source_module
        codec = ctx.spec.codec
        assert codec is not None
        if not info.encoder_found:
            yield self.finding(
                mod,
                1,
                f"spec codec names `{codec.encoder}` but "
                f"{codec.module} defines no such function",
            )
        if not info.decoder_found:
            yield self.finding(
                mod,
                1,
                f"spec codec names `{codec.decoder}` but "
                f"{codec.module} defines no such function",
            )
        for arity, lineno in info.encoder_arities:
            if arity != width:
                yield self.finding(
                    mod,
                    lineno,
                    f"`{codec.encoder}` packs a {arity}-tuple but the spec "
                    f"wire tuple has {width} columns "
                    f"({', '.join(hops.wire_tuple)}) [{hops.anchor}]",
                )
        if info.decoder_found and info.decoder_params - 1 != width:
            yield self.finding(
                mod,
                info.decoder_lineno,
                f"`{codec.decoder}` unpacks {info.decoder_params - 1} wire "
                f"columns but the spec wire tuple has {width} "
                f"({', '.join(hops.wire_tuple)}) [{hops.anchor}]",
            )


# ----------------------------------------------------------------------
# P4 — hop step / TTL bound discipline
# ----------------------------------------------------------------------


class StepBoundRule(ProtoRule):
    """P4 — hop steps and TTL stamps come only from bounded expressions."""

    id = "protocol-step-bound"
    code = "P4"
    description = (
        "a hop step must be the spec'd initial value, a passthrough of an "
        "existing step, or an increment dominated by a bound check against "
        "the trajectory's final step; TTL expiries must use spec'd sources"
    )
    fix_hint = (
        "compare against `final_step` before advancing the step, or stamp "
        "TTLs from a spec'd expiry expression"
    )

    def check(self, ctx: ProtoContext) -> Iterator[Finding]:
        hops = ctx.spec.hops
        if hops is not None:
            for sw in ctx.model.step_writes:
                message = self._classify(sw, hops.step_init, hops.bound)
                if message is not None:
                    yield self.finding(sw.module, sw.lineno, message)
        ttl = ctx.spec.ttl
        if ttl is not None:
            for tw in ctx.model.ttl_writes:
                expr = _deref(tw.expr, tw.bindings)
                text = norm_expr(expr)
                if text in ttl.sources or norm_expr(tw.expr) in ttl.sources:
                    continue
                yield self.finding(
                    tw.module,
                    tw.lineno,
                    f"TTL expiry for `{tw.attr}` stamped from `{text}`, "
                    f"which is not a spec'd source "
                    f"({', '.join(ttl.sources)}) [{ttl.anchor}]",
                )

    def _classify(
        self, sw: StepWrite, step_init: int, bound: str
    ) -> str | None:
        expr = sw.expr
        if isinstance(expr, ast.Constant):
            if expr.value == step_init:
                return None
            return (
                f"hop step initialised to {expr.value!r} but the spec "
                f"says step_init={step_init}"
            )
        d = _deref(expr, sw.bindings)
        if isinstance(d, ast.Name):
            if sw.func is not None and (
                d.id in _param_names(sw.func)
                or d.id in _loop_target_names(sw.func)
            ):
                return None  # passthrough of an existing step value
            return (
                f"hop step written from unbound name `{d.id}` "
                "(not a parameter, loop variable, or tracked binding)"
            )
        if isinstance(d, (ast.Subscript, ast.Attribute)):
            return None  # passthrough from a step column / message field
        if isinstance(d, ast.BinOp) and isinstance(d.op, ast.Add):
            scope: ast.AST | None = sw.func
            if _mentions_self(d):
                scope = sw.cls if sw.cls is not None else sw.func
            if _has_bound_compare(scope, bound):
                return None
            return (
                f"hop step advanced (`{norm_expr(d)}`) without a dominating "
                f"`{bound}` bound check in scope"
            )
        if isinstance(d, ast.Constant):
            if d.value == step_init:
                return None
            return (
                f"hop step initialised to {d.value!r} but the spec "
                f"says step_init={step_init}"
            )
        return (
            f"hop step written from unrecognised expression "
            f"`{norm_expr(d)}` (spec allows init={step_init}, passthrough, "
            f"or a `{bound}`-bounded increment)"
        )


# ----------------------------------------------------------------------
# P5 — epoch monotonicity: who may write self.epoch, and from what
# ----------------------------------------------------------------------


class EpochMonotoneRule(ProtoRule):
    """P5 — ``self.epoch`` (and message epoch fields) use spec'd sources."""

    id = "protocol-epoch-monotone"
    code = "P5"
    description = (
        "self.epoch may be written only by the spec'd writer functions from "
        "their spec'd source expressions (None — demotion/reset — is always "
        "legal); message epoch fields must be filled from spec'd sources"
    )
    fix_hint = (
        "route the epoch through a spec'd writer/expression, or extend the "
        "spec with a DESIGN.md citation"
    )

    def check(self, ctx: ProtoContext) -> Iterator[Finding]:
        epochs = ctx.spec.epochs
        if epochs is not None:
            for ew in ctx.model.epoch_writes:
                expr = _deref(ew.expr, ew.bindings)
                if isinstance(expr, ast.Constant) and expr.value is None:
                    continue
                allowed = epochs.allowed(ew.qname)
                if allowed is None:
                    yield self.finding(
                        ew.module,
                        ew.lineno,
                        f"`{ew.qname}` writes self.epoch but is not a "
                        f"spec'd epoch writer [{epochs.anchor}]",
                    )
                    continue
                text = norm_expr(expr)
                raw = norm_expr(ew.expr)
                if text not in allowed and raw not in allowed:
                    yield self.finding(
                        ew.module,
                        ew.lineno,
                        f"self.epoch written from `{raw}` but the spec "
                        f"allows only ({', '.join(allowed)}) here "
                        f"[{epochs.anchor}]",
                    )
        for site in ctx.model.constructions:
            entry = ctx.spec.message(site.message)
            impl = ctx.model.registry.get(site.message)
            if entry is None or impl is None or not entry.epoch_field_sources:
                continue
            arg = self._epoch_arg(site.call, [f.name for f in impl.fields])
            if arg is None:
                continue
            expr = _deref(arg, site.bindings)
            text = norm_expr(expr)
            raw = norm_expr(arg)
            if (
                isinstance(expr, ast.Constant) and expr.value is None
            ) or text in entry.epoch_field_sources or raw in entry.epoch_field_sources:
                continue
            yield self.finding(
                site.module,
                site.lineno,
                f"field `epoch` of `{site.message}` filled from `{text}` "
                f"but the spec allows "
                f"({', '.join(entry.epoch_field_sources)}) [{entry.anchor}]",
            )

    @staticmethod
    def _epoch_arg(call: ast.Call, names: list[str]) -> ast.expr | None:
        if "epoch" not in names:
            return None
        for kw in call.keywords:
            if kw.arg == "epoch":
                return kw.value
        idx = names.index("epoch")
        if idx < len(call.args):
            return call.args[idx]
        return None


# ----------------------------------------------------------------------
# P6 — spec <-> implementation coverage
# ----------------------------------------------------------------------


class SpecCoverageRule(ProtoRule):
    """P6 — the spec and the implementation cover each other exactly."""

    id = "protocol-spec-coverage"
    code = "P6"
    description = (
        "every spec message must have a __protocol__-marked implementation, "
        "every marked class (and every dataclass in a spec'd message "
        "module) must be covered by the spec, and routed payload tags must "
        "match the spec's payload table"
    )
    fix_hint = (
        "add the missing spec entry with its PAPER.md/DESIGN.md anchor, or "
        "mark/remove the unregistered class"
    )

    def check(self, ctx: ProtoContext) -> Iterator[Finding]:
        spec = ctx.spec
        model = ctx.model
        for entry in spec.messages:
            if entry.name not in model.registry:
                yield self.finding(
                    spec.relpath,
                    0,
                    f"spec covers `{entry.name}` but no __protocol__-marked "
                    f"class implements it [{entry.anchor}]",
                )
        for name in sorted(model.registry):
            if spec.message(name) is None:
                impl = model.registry[name]
                yield self.finding(
                    impl.module,
                    impl.lineno,
                    f"message class `{name}` is not covered by the protocol "
                    "spec (add an entry with its paper anchor)",
                )
        by_module = {m.module: m for m in model.modules}
        for dotted in spec.message_modules:
            mod = by_module.get(dotted)
            if mod is None:
                continue  # path-restricted run; the full gate sees it
            for name, lineno in model.dataclasses_by_module.get(dotted, []):
                if name not in model.registry:
                    yield self.finding(
                        mod,
                        lineno,
                        f"dataclass `{name}` in message module {dotted} "
                        "lacks the __protocol__ marker (every message-module "
                        "dataclass must be registered and spec-covered)",
                    )
        emitted = {}
        for site in model.payload_sites:
            emitted.setdefault(site.tag, site)
        for tag in sorted(emitted):
            if spec.payload(tag) is None:
                site = emitted[tag]
                yield self.finding(
                    site.module,
                    site.lineno,
                    f'routed payload tag "{tag}" is not covered by the '
                    "spec's payload table",
                )
        for payload in spec.payloads:
            if payload.tag not in emitted:
                yield self.finding(
                    spec.relpath,
                    0,
                    f'spec covers payload "{payload.tag}" but nothing emits '
                    f"it [{payload.anchor}]",
                )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

ALL_PROTO_RULES: tuple[ProtoRule, ...] = (
    UnhandledMessageRule(),
    PhaseViolationRule(),
    FieldDriftRule(),
    StepBoundRule(),
    EpochMonotoneRule(),
    SpecCoverageRule(),
)


def resolve_proto_rules(spec: str | Iterable[str] | None) -> tuple[ProtoRule, ...]:
    """Rules selected by a comma/space separated list of ids or codes."""
    from repro.analysis.lint.engine import LintError

    if spec is None:
        return ALL_PROTO_RULES
    if isinstance(spec, str):
        wanted = [s for chunk in spec.split(",") for s in chunk.split()]
    else:
        wanted = list(spec)
    wanted = [w.strip().lower() for w in wanted if w.strip()]
    if not wanted:
        return ALL_PROTO_RULES
    by_key = {r.id: r for r in ALL_PROTO_RULES}
    by_key.update({r.code.lower(): r for r in ALL_PROTO_RULES})
    selected: list[ProtoRule] = []
    for key in wanted:
        rule = by_key.get(key)
        if rule is None:
            known = ", ".join(f"{r.code}/{r.id}" for r in ALL_PROTO_RULES)
            raise LintError(f"unknown proto rule {key!r}; known rules: {known}")
        if rule not in selected:
            selected.append(rule)
    return tuple(selected)


def proto_rule_table() -> str:
    """Plain-text rule table for ``repro proto-check --list-rules``."""
    width = max(len(r.id) for r in ALL_PROTO_RULES)
    lines = []
    for rule in ALL_PROTO_RULES:
        lines.append(f"{rule.code:>4}  {rule.id:<{width}}  {rule.description}")
    return "\n".join(lines)
