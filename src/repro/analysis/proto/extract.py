"""Extraction: recover the *implemented* protocol from the AST.

This is the evidence side of ``repro proto-check``.  It walks the parsed
project (the same :class:`SourceModule` set and flow
:class:`~repro.analysis.flow.callgraph.ProjectIndex` the other engines
share) and builds a :class:`ProtocolModel`:

* the **message registry** — classes carrying a ``__protocol__`` marker,
  with their dataclass fields;
* **node classes** — any class defining ``on_round`` — each with a
  :class:`~repro.analysis.proto.phases.ClassPhases` phase analysis;
* the **dispatch table** — the exact-type bucket dict inside
  ``on_round`` (message class -> bucket variable) plus ``on_<msg>``
  handler methods, and the **consumer sites** where buckets are handed
  to handler methods;
* **construction sites** of registry classes (the proxy for send sites:
  constructed messages flow through pending-launch dicts and batch
  APIs before any literal ``ctx.send``), each with its phase context;
* **routed-payload sites** — ``make_routed_message(payload=("tag", …))``
  constructions and the ``tag == "…"`` comparisons that consume them;
* **step / TTL / epoch writes** — the raw material for the bound rules
  (P4/P5), with per-function name bindings so ``next_k = k + 1`` is
  classified by what bound ``next_k``.

Extraction is deliberately syntactic and over-approximate; the rules in
:mod:`repro.analysis.proto.rules` decide what is a finding.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.analysis.flow.callgraph import ProjectIndex
from repro.analysis.lint.engine import SourceModule
from repro.analysis.proto.phases import ClassPhases
from repro.analysis.proto.spec import ProtocolSpec

__all__ = [
    "SEND_APIS",
    "ConstructionSite",
    "ConsumerSite",
    "DispatchEntry",
    "FieldInfo",
    "MessageClass",
    "NodeClass",
    "PayloadSite",
    "PayloadTagCheck",
    "ProtocolModel",
    "SendSite",
    "StepWrite",
    "TtlWrite",
    "EpochWrite",
    "CodecInfo",
]

#: Context send APIs whose calls count as wire emission sites.
SEND_APIS = frozenset(
    {
        "send",
        "send_singles_batch",
        "send_many",
        "send_many_batch",
        "send_hops",
        "send_hops_batch",
    }
)

_MARKER = "__protocol__"


@dataclass(frozen=True)
class FieldInfo:
    """One dataclass field of a registered message class."""

    name: str
    has_default: bool


@dataclass
class MessageClass:
    """A ``__protocol__``-marked class: one implemented message type."""

    name: str
    module: SourceModule
    node: ast.ClassDef
    lineno: int
    fields: tuple[FieldInfo, ...]


@dataclass
class NodeClass:
    """A protocol node class (defines ``on_round``), with phase analysis."""

    name: str
    module: SourceModule
    node: ast.ClassDef
    phases: ClassPhases


@dataclass
class DispatchEntry:
    """``{MessageClass: bucket_var}`` entry in the ``on_round`` dispatch."""

    message: str
    bucket: str
    node_class: str
    module: SourceModule
    lineno: int


@dataclass
class ConsumerSite:
    """A handler receiving a message type (bucket hand-off or ``on_*``)."""

    message: str
    handler: str  # qualified Class.method
    module: SourceModule
    lineno: int
    phases: frozenset[str]


@dataclass
class ConstructionSite:
    """A call constructing a registry message class."""

    message: str
    module: SourceModule
    qname: str
    lineno: int
    call: ast.Call
    #: Phase context when inside a node-class method; None elsewhere.
    phases: frozenset[str] | None
    bindings: dict[str, ast.expr]


@dataclass
class PayloadSite:
    """A ``make_routed_message(..., payload=("tag", body))`` call."""

    tag: str
    module: SourceModule
    qname: str
    lineno: int
    phases: frozenset[str] | None


@dataclass
class PayloadTagCheck:
    """A ``tag == "…"`` comparison consuming a routed payload."""

    tag: str
    module: SourceModule
    qname: str
    lineno: int


@dataclass
class SendSite:
    """A ``ctx.send*`` call (any receiver, API name match)."""

    api: str
    module: SourceModule
    qname: str
    lineno: int
    call: ast.Call


@dataclass
class StepWrite:
    """A hop step value leaving this function (Hop ctor / step column)."""

    module: SourceModule
    qname: str
    lineno: int
    expr: ast.expr
    func: ast.FunctionDef | ast.AsyncFunctionDef | None
    cls: ast.ClassDef | None
    bindings: dict[str, ast.expr]


@dataclass
class TtlWrite:
    """An expiry stamp entering a TTL pool/ledger attribute."""

    module: SourceModule
    qname: str
    lineno: int
    expr: ast.expr
    attr: str
    kind: str  # "pool" | "ledger"
    bindings: dict[str, ast.expr]


@dataclass
class EpochWrite:
    """A ``self.epoch = …`` assignment inside a node class."""

    module: SourceModule
    qname: str
    lineno: int
    expr: ast.expr
    bindings: dict[str, ast.expr]


@dataclass
class CodecInfo:
    """Arities of the exchange pack/unpack pair named by the spec."""

    module: str
    encoder_found: bool = False
    decoder_found: bool = False
    encoder_arities: list[tuple[int, int]] = field(default_factory=list)
    decoder_params: int = 0
    decoder_lineno: int = 0
    source_module: SourceModule | None = None


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = (
            target.id
            if isinstance(target, ast.Name)
            else getattr(target, "attr", None)
        )
        if name == "dataclass":
            return True
    return False


def _has_marker(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == _MARKER for t in stmt.targets
        ):
            return True
    return False


def _class_fields(node: ast.ClassDef) -> tuple[FieldInfo, ...]:
    fields: list[FieldInfo] = []
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        if not isinstance(stmt.target, ast.Name):
            continue
        name = stmt.target.id
        if name.startswith("_"):
            continue
        ann = ast.unparse(stmt.annotation)
        if "ClassVar" in ann:
            continue
        fields.append(FieldInfo(name=name, has_default=stmt.value is not None))
    return tuple(fields)


def _last_component(dotted: str | None) -> str | None:
    if not dotted:
        return None
    return dotted.rpartition(".")[2]


def _scope_bindings(func: ast.AST) -> dict[str, ast.expr]:
    """``name -> expr`` for simple assignments in a function body."""
    bindings: dict[str, ast.expr] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                bindings[target.id] = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                bindings[node.target.id] = node.value
    return bindings


def _unpack_sources(func: ast.AST) -> dict[str, str]:
    """``name -> source text`` for tuple-unpack targets (payload tags)."""
    out: dict[str, str] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, (ast.Tuple, ast.List)):
                src = ast.unparse(node.value)
                for elt in target.elts:
                    if isinstance(elt, ast.Name):
                        out[elt.id] = src
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if isinstance(node.target, (ast.Tuple, ast.List)):
                src = ast.unparse(node.iter)
                for elt in node.target.elts:
                    if isinstance(elt, ast.Name):
                        out[elt.id] = src
    return out


class ProtocolModel:
    """Everything proto rules need, extracted in one pass."""

    def __init__(
        self,
        modules: Sequence[SourceModule],
        index: ProjectIndex,
        spec: ProtocolSpec,
    ) -> None:
        self.modules = list(modules)
        self.index = index
        self.spec = spec
        self.registry: dict[str, MessageClass] = {}
        self.node_classes: list[NodeClass] = []
        self.dispatch: list[DispatchEntry] = []
        self.consumers: list[ConsumerSite] = []
        self.constructions: list[ConstructionSite] = []
        self.payload_sites: list[PayloadSite] = []
        self.payload_checks: list[PayloadTagCheck] = []
        self.send_sites: list[SendSite] = []
        self.step_writes: list[StepWrite] = []
        self.ttl_writes: list[TtlWrite] = []
        self.epoch_writes: list[EpochWrite] = []
        #: module dotted name -> top-level dataclass names (for P6 coverage).
        self.dataclasses_by_module: dict[str, list[tuple[str, int]]] = {}
        self.codec: CodecInfo | None = None

        for mod in self.modules:
            self._scan_classes(mod)
        self._node_class_names = {nc.name for nc in self.node_classes}
        for mod in self.modules:
            self._scan_module(mod)
        if spec.codec is not None:
            self._scan_codec()

    # -- pass 1: classes ---------------------------------------------------

    def _scan_classes(self, mod: SourceModule) -> None:
        datas: list[tuple[str, int]] = []
        for node in mod.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            if _is_dataclass_decorated(node):
                datas.append((node.name, node.lineno))
            if _has_marker(node):
                self.registry[node.name] = MessageClass(
                    name=node.name,
                    module=mod,
                    node=node,
                    lineno=node.lineno,
                    fields=_class_fields(node),
                )
            if any(
                isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                and child.name == "on_round"
                for child in node.body
            ):
                self.node_classes.append(
                    NodeClass(
                        name=node.name,
                        module=mod,
                        node=node,
                        phases=ClassPhases(node),
                    )
                )
        if datas:
            self.dataclasses_by_module[mod.module] = datas

    # -- pass 2: sites -----------------------------------------------------

    def _scan_module(self, mod: SourceModule) -> None:
        if mod.in_packages(("repro.analysis",)):
            # The analyzers themselves mention steps/payloads/epochs by
            # name everywhere; never read protocol sites out of them.
            return
        node_by_class = {
            nc.name: nc for nc in self.node_classes if nc.module is mod
        }
        for cls_ast, func, qname in _functions_of(mod):
            node_cls = node_by_class.get(cls_ast.name) if cls_ast else None
            self._scan_function(mod, cls_ast, func, qname, node_cls)
        # on_round dispatch/consumers need the whole-function view.
        for nc in node_by_class.values():
            self._scan_dispatch(nc)
            self._scan_handlers(nc)

    def _scan_function(
        self,
        mod: SourceModule,
        cls_node: ast.ClassDef | None,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        qname: str,
        node_cls: NodeClass | None,
    ) -> None:
        bindings = _scope_bindings(func)
        unpacks = _unpack_sources(func)

        def ctx_of(node: ast.AST) -> frozenset[str] | None:
            if node_cls is None:
                return None
            return node_cls.phases.context(func.name, node)

        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                self._scan_call(
                    mod, qname, func, cls_node, node, bindings, ctx_of
                )
            elif isinstance(node, ast.Compare):
                self._scan_tag_check(mod, qname, node, unpacks, bindings)
            elif isinstance(node, ast.Assign):
                self._scan_assign(mod, qname, node, bindings, node_cls)

    # -- calls -------------------------------------------------------------

    def _scan_call(
        self,
        mod: SourceModule,
        qname: str,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        cls_node: ast.ClassDef | None,
        call: ast.Call,
        bindings: dict[str, ast.expr],
        ctx_of,
    ) -> None:
        callee = _last_component(mod.resolve(call.func)) or (
            call.func.id if isinstance(call.func, ast.Name) else None
        )
        attr = call.func.attr if isinstance(call.func, ast.Attribute) else None

        # Message construction (the send proxy).
        if callee in self.registry:
            self.constructions.append(
                ConstructionSite(
                    message=callee,
                    module=mod,
                    qname=qname,
                    lineno=call.lineno,
                    call=call,
                    phases=ctx_of(call),
                    bindings=bindings,
                )
            )
        # Hop construction: second arg is a step write.
        if callee == "Hop":
            step = None
            if len(call.args) >= 2:
                step = call.args[1]
            else:
                for kw in call.keywords:
                    if kw.arg == "step":
                        step = kw.value
            if step is not None:
                self.step_writes.append(
                    StepWrite(
                        module=mod,
                        qname=qname,
                        lineno=call.lineno,
                        expr=step,
                        func=func,
                        cls=cls_node,
                        bindings=bindings,
                    )
                )
        # Routed payload construction — a direct ``make_routed_message``
        # call, or a local ``*routed*`` wrapper that forwards a
        # ``payload`` parameter (resolved over the flow ProjectIndex).
        if "routed" in (callee or "") or "routed" in (attr or ""):
            payload_expr: ast.expr | None = None
            for kw in call.keywords:
                if kw.arg == "payload":
                    payload_expr = kw.value
            if payload_expr is None and call.args:
                resolved = self.index.resolve_call(
                    mod, cls_node.name if cls_node else None, call.func
                )
                if resolved is not None:
                    info, is_bound = resolved
                    params = [
                        a.arg
                        for a in info.node.args.posonlyargs
                        + info.node.args.args
                    ]
                    if is_bound and params and params[0] in ("self", "cls"):
                        params = params[1:]
                    if "payload" in params:
                        pos = params.index("payload")
                        if pos < len(call.args):
                            payload_expr = call.args[pos]
            if payload_expr is not None:
                if (
                    isinstance(payload_expr, ast.Name)
                    and payload_expr.id in bindings
                ):
                    payload_expr = bindings[payload_expr.id]
                for tup in ast.walk(payload_expr):
                    if (
                        isinstance(tup, ast.Tuple)
                        and tup.elts
                        and isinstance(tup.elts[0], ast.Constant)
                        and isinstance(tup.elts[0].value, str)
                    ):
                        self.payload_sites.append(
                            PayloadSite(
                                tag=tup.elts[0].value,
                                module=mod,
                                qname=qname,
                                lineno=call.lineno,
                                phases=ctx_of(call),
                            )
                        )
        # Send APIs (emission sites + hop-plane step columns).
        if attr in SEND_APIS:
            self.send_sites.append(
                SendSite(
                    api=attr,
                    module=mod,
                    qname=qname,
                    lineno=call.lineno,
                    call=call,
                )
            )
            if attr == "send_hops":
                # NodeContext.send_hops(msg, step, dsts) vs the network
                # level send_hops(src, msg, step, dsts): the step sits
                # just before the dsts in a fully positional call.
                step = None
                for kw in call.keywords:
                    if kw.arg == "step":
                        step = kw.value
                if step is None and len(call.args) >= 4:
                    step = call.args[2]
                elif step is None and len(call.args) >= 2:
                    step = call.args[1]
                if step is not None:
                    self.step_writes.append(
                        StepWrite(
                            module=mod,
                            qname=qname,
                            lineno=call.lineno,
                            expr=step,
                            func=func,
                            cls=cls_node,
                            bindings=bindings,
                        )
                    )
            if attr == "send_hops_batch":
                # Items are (msg, step, dsts) tuples, possibly inside a
                # list literal or comprehension.
                for arg in call.args:
                    for tup in ast.walk(arg):
                        if not (
                            isinstance(tup, ast.Tuple) and len(tup.elts) >= 2
                        ):
                            continue
                        self.step_writes.append(
                            StepWrite(
                                module=mod,
                                qname=qname,
                                lineno=tup.lineno,
                                expr=tup.elts[1],
                                func=func,
                                cls=cls_node,
                                bindings=bindings,
                            )
                        )
        # `.append(...)` sites: hop-plane step columns and TTL pools.
        if attr == "append" and call.args:
            receiver = call.func.value
            recv_name = None
            if isinstance(receiver, ast.Name):
                recv_name = receiver.id
            elif isinstance(receiver, ast.Attribute):
                recv_name = receiver.attr
            if recv_name and "step" in recv_name.lower():
                self.step_writes.append(
                    StepWrite(
                        module=mod,
                        qname=qname,
                        lineno=call.lineno,
                        expr=call.args[0],
                        func=func,
                        cls=cls_node,
                        bindings=bindings,
                    )
                )
            ttl = self.spec.ttl
            if (
                ttl is not None
                and isinstance(receiver, ast.Attribute)
                and receiver.attr in ttl.pools
                and isinstance(call.args[0], ast.Tuple)
                and call.args[0].elts
            ):
                self.ttl_writes.append(
                    TtlWrite(
                        module=mod,
                        qname=qname,
                        lineno=call.lineno,
                        expr=call.args[0].elts[0],
                        attr=receiver.attr,
                        kind="pool",
                        bindings=bindings,
                    )
                )

    # -- payload tag comparisons --------------------------------------------

    def _scan_tag_check(
        self,
        mod: SourceModule,
        qname: str,
        node: ast.Compare,
        unpacks: dict[str, str],
        bindings: dict[str, ast.expr],
    ) -> None:
        if len(node.ops) != 1 or not isinstance(node.ops[0], (ast.Eq, ast.In)):
            return
        for const, other in (
            (node.left, node.comparators[0]),
            (node.comparators[0], node.left),
        ):
            if not (isinstance(const, ast.Constant) and isinstance(const.value, str)):
                continue
            text = ast.unparse(other)
            if isinstance(other, ast.Name):
                if other.id in unpacks:
                    text = unpacks[other.id]
                elif other.id in bindings:
                    text = ast.unparse(bindings[other.id])
            if "payload" in text:
                self.payload_checks.append(
                    PayloadTagCheck(
                        tag=const.value,
                        module=mod,
                        qname=qname,
                        lineno=node.lineno,
                    )
                )

    # -- assignments (epoch writes, TTL ledgers) -----------------------------

    def _scan_assign(
        self,
        mod: SourceModule,
        qname: str,
        node: ast.Assign,
        bindings: dict[str, ast.expr],
        node_cls: NodeClass | None,
    ) -> None:
        if len(node.targets) != 1:
            return
        target = node.targets[0]
        if (
            node_cls is not None
            and isinstance(target, ast.Attribute)
            and target.attr == "epoch"
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            self.epoch_writes.append(
                EpochWrite(
                    module=mod,
                    qname=qname,
                    lineno=node.lineno,
                    expr=node.value,
                    bindings=bindings,
                )
            )
        ttl = self.spec.ttl
        if (
            ttl is not None
            and isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Attribute)
            and target.value.attr in ttl.ledgers
            and isinstance(target.value.value, ast.Name)
            and target.value.value.id == "self"
        ):
            self.ttl_writes.append(
                TtlWrite(
                    module=mod,
                    qname=qname,
                    lineno=node.lineno,
                    expr=node.value,
                    attr=target.value.attr,
                    kind="ledger",
                    bindings=bindings,
                )
            )

    # -- dispatch & consumers ------------------------------------------------

    def _scan_dispatch(self, nc: NodeClass) -> None:
        on_round = nc.phases.methods.get("on_round")
        if on_round is None:
            return
        mod = nc.module
        bucket_of: dict[str, str] = {}
        for node in ast.walk(on_round):
            if not isinstance(node, ast.Dict):
                continue
            entries: list[tuple[str, str, int]] = []
            for key, value in zip(node.keys, node.values):
                if key is None or not isinstance(value, ast.Name):
                    continue
                name = _last_component(mod.resolve(key)) or (
                    key.id if isinstance(key, ast.Name) else None
                )
                if name in self.registry:
                    entries.append((name, value.id, key.lineno))
            # Any dict inside on_round keyed by registry classes is the
            # dispatch table (even a partial one — that IS the P1 case).
            if entries:
                for msg, bucket, lineno in entries:
                    self.dispatch.append(
                        DispatchEntry(
                            message=msg,
                            bucket=bucket,
                            node_class=nc.name,
                            module=mod,
                            lineno=lineno,
                        )
                    )
                    bucket_of[bucket] = msg
        if not bucket_of:
            return
        # Loop aliases: `for m in bucket:` makes the target carry the type.
        alias: dict[str, str] = dict(bucket_of)
        for node in ast.walk(on_round):
            if (
                isinstance(node, (ast.For, ast.AsyncFor))
                and isinstance(node.target, ast.Name)
                and isinstance(node.iter, ast.Name)
                and node.iter.id in alias
            ):
                alias[node.target.id] = alias[node.iter.id]
        for node in ast.walk(on_round):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
            ):
                continue
            for arg in node.args:
                if isinstance(arg, ast.Name) and arg.id in alias:
                    self.consumers.append(
                        ConsumerSite(
                            message=alias[arg.id],
                            handler=f"{nc.name}.{node.func.attr}",
                            module=mod,
                            lineno=node.lineno,
                            phases=nc.phases.context("on_round", node),
                        )
                    )

    def _scan_handlers(self, nc: NodeClass) -> None:
        """``on_<x>(self, ..., msg: MessageType)`` methods count as dispatch."""
        mod = nc.module
        for name, func in nc.phases.methods.items():
            if not name.startswith("on_") or name == "on_round":
                continue
            for arg in func.args.args + func.args.kwonlyargs:
                if arg.annotation is None:
                    continue
                msg = _last_component(mod.resolve(arg.annotation)) or (
                    arg.annotation.id
                    if isinstance(arg.annotation, ast.Name)
                    else None
                )
                if msg in self.registry:
                    self.dispatch.append(
                        DispatchEntry(
                            message=msg,
                            bucket=arg.arg,
                            node_class=nc.name,
                            module=mod,
                            lineno=func.lineno,
                        )
                    )
                    self.consumers.append(
                        ConsumerSite(
                            message=msg,
                            handler=f"{nc.name}.{name}",
                            module=mod,
                            lineno=func.lineno,
                            phases=nc.phases.entries.get(
                                name, frozenset()
                            ),
                        )
                    )

    # -- codec ---------------------------------------------------------------

    def _scan_codec(self) -> None:
        codec = self.spec.codec
        assert codec is not None
        info = CodecInfo(module=codec.module)
        for mod in self.modules:
            if mod.module != codec.module:
                continue
            info.source_module = mod
            for cls_ast, func, _qname in _functions_of(mod):
                if cls_ast is not None:
                    continue
                if func.name == codec.encoder:
                    info.encoder_found = True
                    for node in ast.walk(func):
                        if isinstance(node, ast.Return) and isinstance(
                            node.value, ast.Tuple
                        ):
                            info.encoder_arities.append(
                                (len(node.value.elts), node.lineno)
                            )
                if func.name == codec.decoder:
                    info.decoder_found = True
                    info.decoder_params = len(
                        func.args.posonlyargs + func.args.args
                    )
                    info.decoder_lineno = func.lineno
        self.codec = info

    # -- summary -------------------------------------------------------------

    def summary(self) -> dict:
        """Counts for the report's ``protocol`` block (deterministic)."""
        return {
            "messages": len(self.registry),
            "node_classes": len(self.node_classes),
            "dispatch_entries": len(self.dispatch),
            "constructions": len(self.constructions),
            "payload_sites": len(self.payload_sites),
            "send_sites": len(self.send_sites),
            "step_writes": len(self.step_writes),
            "ttl_writes": len(self.ttl_writes),
            "epoch_writes": len(self.epoch_writes),
        }


def _functions_of(
    mod: SourceModule,
) -> Iterable[
    tuple[ast.ClassDef | None, ast.FunctionDef | ast.AsyncFunctionDef, str]
]:
    """``(enclosing class, function node, qname)`` for top-two-level defs."""
    for node in mod.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield None, node, f"{mod.module}.{node.name}"
        elif isinstance(node, ast.ClassDef):
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield (
                        node,
                        child,
                        f"{mod.module}.{node.name}.{child.name}",
                    )
