"""The declarative protocol spec (``protocol-spec.json``).

The spec is the committed, human-reviewed statement of the paper's
message contract: for every message type its fields, lifecycle phases of
legal producers and consumers, and — where the paper bounds them — the
allowed step/TTL/epoch source expressions.  Every entry carries an
``anchor`` citing the PAPER.md / DESIGN.md / docs/PROTOCOL.md passage it
was derived from, so a reviewer can audit the spec against the paper the
same way the analyzer audits the code against the spec.

Schema (JSON, top-level keys; everything beyond ``schema``/``messages``
is optional so fixture corpora can stay minimal):

``messages``
    ``name -> {anchor, kind, fields, producer_phases, consumer_phases,
    epoch_field_sources}``.  ``kind`` is ``message`` (node-to-node,
    must be dispatched), ``engine`` (produced by the simulation engine,
    dispatched at nodes) or ``record`` (carried inside other messages,
    never dispatched).
``payloads``
    Routed-payload tags (``("join", rec)`` style) -> ``{anchor,
    producer_phases}``.
``hops``
    ``{anchor, step_init, bound, wire_tuple}`` — the A_ROUTING step
    contract (Lemma 9's bounded trajectory).
``codec``
    ``{module, encoder, decoder}`` — the exchange functions whose
    pack/unpack tuple must agree with ``hops.wire_tuple``.
``epochs``
    ``{anchor, writers: {function-qname-suffix: [allowed exprs]}}`` —
    the only places (and source expressions) allowed to write
    ``self.epoch``; ``None`` (reset/demotion) is always legal.
``ttl``
    ``{anchor, pools, ledgers, sources}`` — attribute names holding
    TTL-stamped entries and the allowed expiry expressions.
``message_modules``
    Dotted modules whose every top-level dataclass must be a registered
    (``__protocol__``-marked and spec-covered) message class; P6 uses it
    to prove 100% coverage of ``repro.core.messages``.

Expressions are compared *normalised* (see :func:`norm_expr`): receiver
prefixes like ``self.``/``ctx.``/``self.params.`` are stripped so the
spec can say ``round + TOKEN_TTL`` regardless of plumbing spelling.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from repro.analysis.lint.engine import LintError

__all__ = [
    "DEFAULT_SPEC_NAME",
    "PHASES",
    "SPEC_SCHEMA",
    "CodecSpec",
    "EpochSpec",
    "HopSpec",
    "MessageSpec",
    "PayloadSpec",
    "ProtocolSpec",
    "TtlSpec",
    "contract_markdown",
    "load_spec",
    "norm_expr",
]

#: File name looked up at the repository root by default.
DEFAULT_SPEC_NAME = "protocol-spec.json"

SPEC_SCHEMA = 1

#: Lifecycle phases, in protocol order (NEW -> FRESH -> ESTABLISHED).
PHASES = ("new", "fresh", "established")

_KINDS = ("message", "engine", "record")

#: Receiver prefixes stripped before comparing expressions to the spec.
_NORM_RE = re.compile(r"\b(self\.params\.|self\.|ctx\.|params\.)")


def norm_expr(node: ast.expr | str) -> str:
    """Canonical text of an expression for spec comparison."""
    text = node if isinstance(node, str) else ast.unparse(node)
    return " ".join(_NORM_RE.sub("", text).split())


def _phases(raw: object, where: str) -> tuple[str, ...]:
    if raw is None:
        return PHASES
    if not isinstance(raw, list) or not all(isinstance(p, str) for p in raw):
        raise LintError(f"protocol-spec: {where} must be a list of phase names")
    bad = [p for p in raw if p not in PHASES]
    if bad:
        raise LintError(
            f"protocol-spec: {where} names unknown phases {bad} "
            f"(known: {list(PHASES)})"
        )
    # Keep protocol order regardless of spec spelling (deterministic output).
    return tuple(p for p in PHASES if p in raw)


def _require_anchor(entry: Mapping, where: str) -> str:
    anchor = entry.get("anchor")
    if not isinstance(anchor, str) or not anchor.strip():
        raise LintError(
            f"protocol-spec: {where} needs a non-empty `anchor` citing its "
            "PAPER.md/DESIGN.md/PROTOCOL.md derivation"
        )
    return anchor


def _str_list(raw: object, where: str) -> tuple[str, ...]:
    if not isinstance(raw, list) or not all(isinstance(s, str) for s in raw):
        raise LintError(f"protocol-spec: {where} must be a list of strings")
    return tuple(raw)


@dataclass(frozen=True)
class MessageSpec:
    """The contract for one message/record type."""

    name: str
    anchor: str
    kind: str
    fields: tuple[str, ...]
    producer_phases: tuple[str, ...]
    consumer_phases: tuple[str, ...]
    epoch_field_sources: tuple[str, ...] = ()

    @property
    def dispatched(self) -> bool:
        """Whether the type must appear in the node dispatch table."""
        return self.kind in ("message", "engine")


@dataclass(frozen=True)
class PayloadSpec:
    """The contract for one routed-payload tag."""

    tag: str
    anchor: str
    producer_phases: tuple[str, ...]


@dataclass(frozen=True)
class HopSpec:
    """The A_ROUTING step contract (trajectory index bound)."""

    anchor: str
    step_init: int
    bound: str
    wire_tuple: tuple[str, ...]


@dataclass(frozen=True)
class CodecSpec:
    """The exchange pack/unpack pair that carries hop wire tuples."""

    module: str
    encoder: str
    decoder: str


@dataclass(frozen=True)
class EpochSpec:
    """Who may write ``self.epoch``, and from which expressions."""

    anchor: str
    writers: tuple[tuple[str, tuple[str, ...]], ...]

    def allowed(self, qname: str) -> tuple[str, ...] | None:
        """Allowed source exprs for a writer qname (suffix match), or None."""
        for suffix, exprs in self.writers:
            if qname == suffix or qname.endswith("." + suffix):
                return exprs
        return None


@dataclass(frozen=True)
class TtlSpec:
    """TTL-stamped containers and their allowed expiry expressions."""

    anchor: str
    pools: tuple[str, ...]
    ledgers: tuple[str, ...]
    sources: tuple[str, ...]


@dataclass(frozen=True)
class ProtocolSpec:
    """The whole committed contract, validated."""

    messages: tuple[MessageSpec, ...]
    payloads: tuple[PayloadSpec, ...] = ()
    hops: HopSpec | None = None
    codec: CodecSpec | None = None
    epochs: EpochSpec | None = None
    ttl: TtlSpec | None = None
    message_modules: tuple[str, ...] = ()
    source: str = ""
    relpath: str = DEFAULT_SPEC_NAME
    _by_name: dict = field(
        default_factory=dict, compare=False, repr=False, hash=False
    )

    def __post_init__(self) -> None:
        self._by_name.update({m.name: m for m in self.messages})

    def message(self, name: str) -> MessageSpec | None:
        return self._by_name.get(name)

    def payload(self, tag: str) -> PayloadSpec | None:
        for p in self.payloads:
            if p.tag == tag:
                return p
        return None

    @classmethod
    def from_dict(cls, raw: Mapping, *, relpath: str = DEFAULT_SPEC_NAME) -> "ProtocolSpec":
        if not isinstance(raw, Mapping):
            raise LintError("protocol-spec: top level must be an object")
        if raw.get("schema") != SPEC_SCHEMA:
            raise LintError(
                f"protocol-spec: schema must be {SPEC_SCHEMA}, "
                f"got {raw.get('schema')!r}"
            )
        messages_raw = raw.get("messages")
        if not isinstance(messages_raw, Mapping) or not messages_raw:
            raise LintError("protocol-spec: `messages` must be a non-empty object")
        messages = []
        for name, entry in messages_raw.items():
            if not isinstance(entry, Mapping):
                raise LintError(f"protocol-spec: messages.{name} must be an object")
            kind = entry.get("kind", "message")
            if kind not in _KINDS:
                raise LintError(
                    f"protocol-spec: messages.{name}.kind must be one of "
                    f"{list(_KINDS)}, got {kind!r}"
                )
            messages.append(
                MessageSpec(
                    name=name,
                    anchor=_require_anchor(entry, f"messages.{name}"),
                    kind=kind,
                    fields=_str_list(
                        entry.get("fields", []), f"messages.{name}.fields"
                    ),
                    producer_phases=_phases(
                        entry.get("producer_phases"),
                        f"messages.{name}.producer_phases",
                    ),
                    consumer_phases=_phases(
                        entry.get("consumer_phases"),
                        f"messages.{name}.consumer_phases",
                    ),
                    epoch_field_sources=tuple(
                        norm_expr(s)
                        for s in _str_list(
                            entry.get("epoch_field_sources", []),
                            f"messages.{name}.epoch_field_sources",
                        )
                    ),
                )
            )
        payloads = []
        for tag, entry in (raw.get("payloads") or {}).items():
            if not isinstance(entry, Mapping):
                raise LintError(f"protocol-spec: payloads.{tag} must be an object")
            payloads.append(
                PayloadSpec(
                    tag=tag,
                    anchor=_require_anchor(entry, f"payloads.{tag}"),
                    producer_phases=_phases(
                        entry.get("producer_phases"),
                        f"payloads.{tag}.producer_phases",
                    ),
                )
            )
        hops = None
        if "hops" in raw:
            h = raw["hops"]
            step_init = h.get("step_init", 0)
            if not isinstance(step_init, int):
                raise LintError("protocol-spec: hops.step_init must be an int")
            hops = HopSpec(
                anchor=_require_anchor(h, "hops"),
                step_init=step_init,
                bound=str(h.get("bound", "final_step")),
                wire_tuple=_str_list(
                    h.get("wire_tuple", []), "hops.wire_tuple"
                ),
            )
        codec = None
        if "codec" in raw:
            c = raw["codec"]
            for key in ("module", "encoder", "decoder"):
                if not isinstance(c.get(key), str) or not c[key]:
                    raise LintError(f"protocol-spec: codec.{key} must be a string")
            codec = CodecSpec(
                module=c["module"], encoder=c["encoder"], decoder=c["decoder"]
            )
        epochs = None
        if "epochs" in raw:
            e = raw["epochs"]
            writers_raw = e.get("writers", {})
            if not isinstance(writers_raw, Mapping):
                raise LintError("protocol-spec: epochs.writers must be an object")
            epochs = EpochSpec(
                anchor=_require_anchor(e, "epochs"),
                writers=tuple(
                    (
                        qname,
                        tuple(
                            norm_expr(s)
                            for s in _str_list(
                                exprs, f"epochs.writers[{qname}]"
                            )
                        ),
                    )
                    for qname, exprs in writers_raw.items()
                ),
            )
        ttl = None
        if "ttl" in raw:
            t = raw["ttl"]
            ttl = TtlSpec(
                anchor=_require_anchor(t, "ttl"),
                pools=_str_list(t.get("pools", []), "ttl.pools"),
                ledgers=_str_list(t.get("ledgers", []), "ttl.ledgers"),
                sources=tuple(
                    norm_expr(s)
                    for s in _str_list(t.get("sources", []), "ttl.sources")
                ),
            )
        return cls(
            messages=tuple(messages),
            payloads=tuple(payloads),
            hops=hops,
            codec=codec,
            epochs=epochs,
            ttl=ttl,
            message_modules=_str_list(
                raw.get("message_modules", []), "message_modules"
            ),
            source=str(raw.get("source", "")),
            relpath=relpath,
        )

    def to_dict(self) -> dict:
        """JSON round-trip: ``from_dict(to_dict(spec)) == spec``."""
        out: dict = {"schema": SPEC_SCHEMA}
        if self.source:
            out["source"] = self.source
        if self.message_modules:
            out["message_modules"] = list(self.message_modules)
        out["messages"] = {
            m.name: {
                "anchor": m.anchor,
                "kind": m.kind,
                "fields": list(m.fields),
                "producer_phases": list(m.producer_phases),
                "consumer_phases": list(m.consumer_phases),
                **(
                    {"epoch_field_sources": list(m.epoch_field_sources)}
                    if m.epoch_field_sources
                    else {}
                ),
            }
            for m in self.messages
        }
        if self.payloads:
            out["payloads"] = {
                p.tag: {
                    "anchor": p.anchor,
                    "producer_phases": list(p.producer_phases),
                }
                for p in self.payloads
            }
        if self.hops:
            out["hops"] = {
                "anchor": self.hops.anchor,
                "step_init": self.hops.step_init,
                "bound": self.hops.bound,
                "wire_tuple": list(self.hops.wire_tuple),
            }
        if self.codec:
            out["codec"] = {
                "module": self.codec.module,
                "encoder": self.codec.encoder,
                "decoder": self.codec.decoder,
            }
        if self.epochs:
            out["epochs"] = {
                "anchor": self.epochs.anchor,
                "writers": {q: list(e) for q, e in self.epochs.writers},
            }
        if self.ttl:
            out["ttl"] = {
                "anchor": self.ttl.anchor,
                "pools": list(self.ttl.pools),
                "ledgers": list(self.ttl.ledgers),
                "sources": list(self.ttl.sources),
            }
        return out


def load_spec(path: Path | str) -> ProtocolSpec:
    """Load and validate a spec file; errors become :class:`LintError`."""
    path = Path(path)
    try:
        raw = json.loads(path.read_text())
    except FileNotFoundError:
        raise LintError(
            f"no protocol spec at {path} (commit one, or pass --spec)"
        ) from None
    except json.JSONDecodeError as exc:
        raise LintError(f"protocol-spec: {path} is not valid JSON: {exc}") from None
    return ProtocolSpec.from_dict(raw, relpath=path.name)


def _cell(phases: tuple[str, ...]) -> str:
    return "any" if tuple(phases) == PHASES else ", ".join(phases) or "—"


def contract_markdown(spec: ProtocolSpec) -> str:
    """The "message contract" table embedded in docs/PROTOCOL.md.

    Generated from the spec so docs cannot drift silently: a test renders
    this from the committed ``protocol-spec.json`` and asserts PROTOCOL.md
    contains it verbatim.
    """
    lines = [
        "| message | kind | fields | producer phases | consumer phases | anchor |",
        "|---|---|---|---|---|---|",
    ]
    for m in spec.messages:
        lines.append(
            f"| `{m.name}` | {m.kind} | "
            + ", ".join(f"`{f}`" for f in m.fields)
            + f" | {_cell(m.producer_phases)}"
            + f" | {_cell(m.consumer_phases) if m.dispatched else '—'}"
            + f" | {m.anchor} |"
        )
    for p in spec.payloads:
        lines.append(
            f"| payload `(\"{p.tag}\", …)` | routed | — "
            f"| {_cell(p.producer_phases)} | target swarm | {p.anchor} |"
        )
    return "\n".join(lines)
