"""Phase-context dataflow: under which lifecycle phases can a line run?

The paper's phase discipline (NEW -> FRESH -> ESTABLISHED, Section 5) is
implemented as ordinary control flow — ``if self.phase is
Phase.ESTABLISHED:`` guards, early returns, and ``self.phase = Phase.X``
assignments.  This module recovers, for every AST node inside a protocol
node class, the *phase context*: the set of phases the node can be in
when that line executes.

Two layers:

* :class:`FunctionPhases` — intraprocedural: walks one function body
  tracking a constraint set through phase tests (``is``/``==``/``in``,
  ``and``/``or``/``not`` compositions), terminating branches (a guard
  that returns narrows the fallthrough), and phase assignments (which
  set the context *absolutely* — a ``NEW -> FRESH`` promotion holds
  whatever the entry context was).
* :class:`ClassPhases` — interprocedural: seeds the entry context of
  externally-called methods (``on_round``, ``prime``, …) with all
  phases and propagates entry contexts through ``self.<method>()`` call
  sites to a fixpoint, so a send buried two helpers below an
  ESTABLISHED guard still inherits ``{established}``.

The lattice is tiny (subsets of three phases) so the fixpoint is cheap;
contexts are deliberately over-approximate — the analyzer only reports a
violation when a site's context *escapes* the spec'd phase set.
"""

from __future__ import annotations

import ast

from repro.analysis.proto.spec import PHASES

__all__ = ["ALL_PHASES", "ClassPhases", "FunctionPhases", "phase_of_attr"]

ALL_PHASES = frozenset(PHASES)
_EMPTY: frozenset[str] = frozenset()


def phase_of_attr(expr: ast.expr) -> str | None:
    """``Phase.ESTABLISHED`` (however the enum is spelled) -> "established"."""
    if not isinstance(expr, ast.Attribute):
        return None
    name = expr.attr.lower()
    if name not in PHASES:
        return None
    base = expr.value
    while isinstance(base, ast.Attribute):
        base = base.value
    if isinstance(base, ast.Name) and "phase" in base.id.lower():
        return name
    return None


def _is_self_phase(expr: ast.expr) -> bool:
    return (
        isinstance(expr, ast.Attribute)
        and expr.attr == "phase"
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    )


def _cond_sets(test: ast.expr) -> tuple[frozenset[str], frozenset[str]]:
    """``(phases if true, phases if false)`` implied by a condition."""
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        t, f = _cond_sets(test.operand)
        return f, t
    if isinstance(test, ast.BoolOp):
        parts = [_cond_sets(v) for v in test.values]
        if isinstance(test.op, ast.And):
            true = ALL_PHASES
            false: frozenset[str] = _EMPTY
            for t, f in parts:
                true &= t
                false |= f
            return true, false
        true = _EMPTY
        false = ALL_PHASES
        for t, f in parts:
            true |= t
            false &= f
        return true, false
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        left, op, right = test.left, test.ops[0], test.comparators[0]
        if _is_self_phase(right) and not isinstance(op, (ast.In, ast.NotIn)):
            left, right = right, left
        if _is_self_phase(left):
            if isinstance(op, (ast.In, ast.NotIn)) and isinstance(
                right, (ast.Tuple, ast.List, ast.Set)
            ):
                members = [phase_of_attr(e) for e in right.elts]
                if all(m is not None for m in members):
                    sel = frozenset(members)  # type: ignore[arg-type]
                    if isinstance(op, ast.In):
                        return sel, ALL_PHASES - sel
                    return ALL_PHASES - sel, sel
            phase = phase_of_attr(right)
            if phase is not None:
                sel = frozenset((phase,))
                if isinstance(op, (ast.Is, ast.Eq)):
                    return sel, ALL_PHASES - sel
                if isinstance(op, (ast.IsNot, ast.NotEq)):
                    return ALL_PHASES - sel, sel
    return ALL_PHASES, ALL_PHASES


def _assigned_phase(stmt: ast.stmt) -> str | None:
    """The phase a ``self.phase = Phase.X`` statement installs, if any."""
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        if _is_self_phase(stmt.targets[0]):
            return phase_of_attr(stmt.value) or "?"
    if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        if _is_self_phase(stmt.target):
            return phase_of_attr(stmt.value) or "?"
    return None


def _phases_assigned_within(stmts: list[ast.stmt]) -> frozenset[str]:
    found: set[str] = set()
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, ast.stmt):
                phase = _assigned_phase(node)
                if phase == "?":
                    return ALL_PHASES
                if phase is not None:
                    found.add(phase)
    return frozenset(found)


class FunctionPhases:
    """Intraprocedural phase contexts for one function body.

    ``at[id(node)]`` is ``(context, absolute)``: the phase set under
    which the node executes *relative to the function entry*, and
    whether it derives from a phase assignment (in which case the entry
    context no longer constrains it).
    """

    def __init__(self, func: ast.FunctionDef) -> None:
        self.func = func
        self.at: dict[int, tuple[frozenset[str], bool]] = {}
        self.self_calls: list[tuple[str, ast.Call]] = []
        exit_state = self._walk(func.body, ALL_PHASES, False)
        self.exit = exit_state
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
            ):
                self.self_calls.append((node.func.attr, node))

    # -- tagging ------------------------------------------------------

    def _tag(self, node: ast.AST, ctx: frozenset[str], absolute: bool) -> None:
        for n in ast.walk(node):
            self.at[id(n)] = (ctx, absolute)

    def lookup(self, node: ast.AST) -> tuple[frozenset[str], bool]:
        return self.at.get(id(node), (ALL_PHASES, False))

    # -- the walk -----------------------------------------------------

    def _walk(
        self, stmts: list[ast.stmt], ctx: frozenset[str], absolute: bool
    ) -> tuple[frozenset[str], bool] | None:
        """Process a block; returns the fallthrough state or None."""
        state: tuple[frozenset[str], bool] | None = (ctx, absolute)
        for stmt in stmts:
            if state is None:
                # Unreachable after a terminator: tag with the empty set so
                # nothing downstream is ever reported from dead code.
                self._tag(stmt, _EMPTY, False)
                continue
            ctx, absolute = state
            if isinstance(stmt, ast.If):
                self.at[id(stmt)] = (ctx, absolute)
                self._tag(stmt.test, ctx, absolute)
                true_set, false_set = _cond_sets(stmt.test)
                body_state = self._walk(stmt.body, ctx & true_set, absolute)
                if stmt.orelse:
                    else_state = self._walk(stmt.orelse, ctx & false_set, absolute)
                else:
                    else_state = (ctx & false_set, absolute)
                if body_state is None and else_state is None:
                    state = None
                elif body_state is None:
                    state = else_state
                elif else_state is None:
                    state = body_state
                else:
                    state = (
                        body_state[0] | else_state[0],
                        body_state[1] and else_state[1],
                    )
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                self.at[id(stmt)] = (ctx, absolute)
                header = stmt.test if isinstance(stmt, ast.While) else stmt.iter
                self._tag(header, ctx, absolute)
                if isinstance(stmt, (ast.For, ast.AsyncFor)):
                    self._tag(stmt.target, ctx, absolute)
                widened = ctx | _phases_assigned_within(stmt.body)
                self._walk(stmt.body, widened, absolute)
                if stmt.orelse:
                    self._walk(stmt.orelse, widened, absolute)
                state = (widened, absolute)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                self.at[id(stmt)] = (ctx, absolute)
                for item in stmt.items:
                    self._tag(item, ctx, absolute)
                state = self._walk(stmt.body, ctx, absolute)
            elif isinstance(stmt, ast.Try):
                self.at[id(stmt)] = (ctx, absolute)
                widened = ctx | _phases_assigned_within(stmt.body)
                body_state = self._walk(stmt.body, ctx, absolute)
                for handler in stmt.handlers:
                    self._walk(handler.body, widened, absolute)
                if stmt.orelse and body_state is not None:
                    body_state = self._walk(stmt.orelse, *body_state)
                if stmt.finalbody:
                    after = body_state if body_state is not None else (widened, absolute)
                    body_state = self._walk(stmt.finalbody, *after)
                state = body_state
            elif isinstance(stmt, (ast.Return, ast.Raise, ast.Break, ast.Continue)):
                self._tag(stmt, ctx, absolute)
                state = None
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Nested helpers execute (when called) somewhere under the
                # definition context; tag the whole body with it.
                self._tag(stmt, ctx, absolute)
            else:
                self._tag(stmt, ctx, absolute)
                phase = _assigned_phase(stmt)
                if phase == "?":
                    state = (ALL_PHASES, True)
                elif phase is not None:
                    state = (frozenset((phase,)), True)
        return state


class ClassPhases:
    """Interprocedural phase contexts for one protocol node class."""

    def __init__(self, cls: ast.ClassDef) -> None:
        self.cls = cls
        self.methods: dict[str, ast.FunctionDef] = {
            n.name: n
            for n in cls.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        self.local: dict[str, FunctionPhases] = {
            name: FunctionPhases(node) for name, node in self.methods.items()
        }
        # Fixpoint over entry contexts.  Methods never self-called inside
        # the class are callable from anywhere -> all phases; `on_round`
        # is the engine entry point regardless.
        self_called = {
            callee
            for fp in self.local.values()
            for callee, _ in fp.self_calls
            if callee in self.methods
        }
        self.entries: dict[str, frozenset[str]] = {
            name: (
                ALL_PHASES
                if name not in self_called or name == "on_round"
                else _EMPTY
            )
            for name in self.methods
        }
        changed = True
        while changed:
            changed = False
            for caller, fp in self.local.items():
                entry = self.entries[caller]
                for callee, call in fp.self_calls:
                    if callee not in self.methods:
                        continue
                    local_ctx, absolute = fp.lookup(call)
                    eff = local_ctx if absolute else entry & local_ctx
                    merged = self.entries[callee] | eff
                    if merged != self.entries[callee]:
                        self.entries[callee] = merged
                        changed = True

    def context(self, method: str, node: ast.AST) -> frozenset[str]:
        """Effective phase context of an AST node inside ``method``."""
        fp = self.local.get(method)
        if fp is None:
            return ALL_PHASES
        local_ctx, absolute = fp.lookup(node)
        if absolute:
            return local_ctx
        return self.entries.get(method, ALL_PHASES) & local_ctx
