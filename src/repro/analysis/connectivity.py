"""Knowledge-graph connectivity audits — the attack success criterion.

An overlay is *partitioned* when some alive node cannot reach some other
alive node through chains of "knows the id of" relations.  The Section-2
attacks are judged by exactly this: after the attack, the victim's component
of the knowledge graph must be separated from the rest.

The knowledge graph is directed (``u`` knows ``v``'s id); for partition
claims we use the *undirected* reachability closure — the weakest possible
notion, which makes disconnection results the strongest.
"""

from __future__ import annotations

from collections import deque
from typing import Mapping

__all__ = [
    "components",
    "is_connected",
    "component_of",
    "is_isolated",
    "knowledge_graph_of_gossip",
]


def _undirected_adjacency(
    knows: Mapping[int, set[int]]
) -> dict[int, set[int]]:
    nodes = set(knows)
    adj: dict[int, set[int]] = {v: set() for v in nodes}
    for u, targets in knows.items():
        for v in targets:
            if v in nodes and v != u:
                adj[u].add(v)
                adj[v].add(u)
    return adj


def components(knows: Mapping[int, set[int]]) -> list[set[int]]:
    """Connected components of the undirected knowledge graph."""
    adj = _undirected_adjacency(knows)
    seen: set[int] = set()
    out: list[set[int]] = []
    for start in adj:
        if start in seen:
            continue
        comp = {start}
        queue = deque([start])
        seen.add(start)
        while queue:
            u = queue.popleft()
            for v in adj[u]:
                if v not in seen:
                    seen.add(v)
                    comp.add(v)
                    queue.append(v)
        out.append(comp)
    return out


def is_connected(knows: Mapping[int, set[int]]) -> bool:
    """Whether all alive nodes form one component (empty/singleton: True)."""
    return len(components(knows)) <= 1


def component_of(knows: Mapping[int, set[int]], v: int) -> set[int]:
    """The component containing ``v``."""
    for comp in components(knows):
        if v in comp:
            return comp
    raise KeyError(f"node {v} not in graph")


def is_isolated(knows: Mapping[int, set[int]], v: int, max_size: int = 1) -> bool:
    """Whether ``v``'s component has at most ``max_size`` members.

    Lemma 3's success criterion uses ``max_size=1`` (the victim alone);
    Lemma 4's uses ``max_size=2`` (the chain head plus the node that just
    joined via it).
    """
    return len(component_of(knows, v)) <= max_size


def knowledge_graph_of_gossip(engine) -> dict[int, set[int]]:
    """Extract the knowledge graph from a gossip-baseline engine run.

    Only alive nodes appear; 'knows' edges to dead nodes are dropped (a dead
    reference cannot carry a message).
    """
    alive = set(engine.alive)
    out: dict[int, set[int]] = {}
    for v in alive:
        node = engine.protocol_of(v)
        out[v] = set(node.known) & alive
    return out
