"""Statistical estimators used by the experiment harness.

* Wilson score intervals for empirical failure/delivery rates;
* a chi-square uniformity test (for Lemma 13's sampling uniformity);
* a log–log scaling-exponent fit (for congestion-vs-n sweeps, Lemma 24).

SciPy is used when available (it is listed as a dev dependency); the
chi-square p-value falls back to a normal approximation otherwise so the
core library stays NumPy-only.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "RateEstimate",
    "wilson_interval",
    "chi_square_uniform",
    "fit_power_law",
    "fit_log_power",
]


@dataclass(frozen=True)
class RateEstimate:
    """An empirical rate with a 95% Wilson confidence interval."""

    successes: int
    trials: int
    rate: float
    lo: float
    hi: float


def wilson_interval(successes: int, trials: int, z: float = 1.96) -> RateEstimate:
    """Wilson score interval for a binomial proportion."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must lie in [0, trials]")
    p = successes / trials
    denom = 1.0 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return RateEstimate(
        successes=successes,
        trials=trials,
        rate=p,
        lo=max(0.0, center - half),
        hi=min(1.0, center + half),
    )


def chi_square_uniform(counts: np.ndarray) -> tuple[float, float]:
    """Chi-square test statistic and p-value against the uniform law."""
    counts = np.asarray(counts, dtype=float)
    if counts.ndim != 1 or counts.size < 2:
        raise ValueError("need a 1-d array with at least 2 cells")
    total = counts.sum()
    if total <= 0:
        raise ValueError("counts must not be all zero")
    expected = total / counts.size
    stat = float(((counts - expected) ** 2 / expected).sum())
    dof = counts.size - 1
    try:
        from scipy import stats

        pvalue = float(stats.chi2.sf(stat, dof))
    except ImportError:  # pragma: no cover - scipy present in dev envs
        # Wilson–Hilferty normal approximation to the chi-square tail.
        z = ((stat / dof) ** (1.0 / 3.0) - (1 - 2.0 / (9 * dof))) / math.sqrt(
            2.0 / (9 * dof)
        )
        pvalue = float(0.5 * math.erfc(z / math.sqrt(2.0)))
    return stat, pvalue


def fit_power_law(xs: np.ndarray, ys: np.ndarray) -> tuple[float, float]:
    """Least-squares fit of ``y = a * x^b`` in log–log space: returns (a, b)."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.shape != ys.shape or xs.size < 2:
        raise ValueError("need matching arrays with at least 2 points")
    if (xs <= 0).any() or (ys <= 0).any():
        raise ValueError("power-law fit needs positive data")
    b, log_a = np.polyfit(np.log(xs), np.log(ys), 1)
    return float(math.exp(log_a)), float(b)


def fit_log_power(ns: np.ndarray, ys: np.ndarray) -> tuple[float, float]:
    """Fit ``y = a * (log2 n)^b`` — the natural model for polylog claims.

    Lemma 24 predicts per-node congestion ``Theta(log^3 n)``; the fitted
    exponent ``b`` should sit near 3 (and, critically, the *same* ``a``
    should explain every n — unlike a polynomial-in-n model).
    """
    ns = np.asarray(ns, dtype=float)
    logs = np.log2(ns)
    return fit_power_law(logs, np.asarray(ys, dtype=float))
