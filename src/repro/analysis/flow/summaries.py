"""Per-function taint summaries by forward abstract interpretation.

Each function body is walked in statement order with an environment
mapping local names to taint sets.  The walk produces a
:class:`Summary` — the function's externally visible flow behaviour:

* ``return_tags`` — source tags generated inside (or in callees) that can
  reach the return value;
* ``param_to_return`` — parameter indices whose taint flows to the
  return value;
* ``param_sinks`` — parameter indices that reach a policy sink inside
  the function (directly or through further calls).

Summaries are computed to a fixpoint over the project call graph: a call
to an analysed function substitutes the actual argument taints into the
callee's current summary, so taint is tracked through any chain of
helpers up to the configured propagation depth.

Soundness is deliberately bounded (this is a tripwire, not a proof
system): loop bodies are interpreted twice (enough for one back-edge of
propagation), attribute state is not tracked across method boundaries
(no heap model), and method calls resolve only through ``self``/``cls``
and imported module paths (single static dispatch).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis.flow.callgraph import FunctionInfo, ProjectIndex
from repro.analysis.flow.policies import (
    LIVE_SOURCE_PACKAGES,
    LIVE_STATE_ATTRS,
    SANITIZER_NAME,
    SANITIZER_REQUIRED_KWARGS,
    Policy,
    dotted_source_label,
)
from repro.analysis.flow.taint import (
    EMPTY,
    Tag,
    is_param,
    param_index,
    param_tag,
    real_tags,
)
from repro.analysis.lint.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.lint.engine import SourceModule

__all__ = ["ParamSink", "Summary", "FunctionAnalyzer"]

#: Labels that survive the AdversaryView sanitizer (it clamps *lateness*;
#: it does not launder determinism taint).
_DETERMINISM_LABELS = frozenset({"wallclock", "env", "global-rng"})


@dataclass(frozen=True, order=True)
class ParamSink:
    """"Parameter ``index`` reaches this sink" — the exported half of a leak."""

    index: int
    policy: str
    detail: str
    path: str
    line: int


@dataclass(frozen=True)
class Summary:
    """The externally visible flow behaviour of one function."""

    return_tags: frozenset = EMPTY
    param_to_return: frozenset = frozenset()
    param_sinks: tuple = ()


def _union(parts) -> frozenset:
    out: set = set()
    for p in parts:
        out |= p
    return frozenset(out)


def _short(node: ast.AST, limit: int = 60) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on parsed trees
        text = "<expr>"
    return text if len(text) <= limit else text[: limit - 3] + "..."


class FunctionAnalyzer:
    """One pass of the abstract interpreter over one function body."""

    def __init__(
        self,
        index: ProjectIndex,
        summaries: dict,
        info: FunctionInfo,
        policies: tuple,
        collect: bool,
    ) -> None:
        self.index = index
        self.summaries = summaries
        self.info = info
        self.mod: "SourceModule" = info.module
        self.relpath = self.mod.relpath
        self.policies = policies
        self._by_id = {p.id: p for p in policies}
        self.lateness = self._by_id.get("flow-lateness")
        self.determinism = self._by_id.get("flow-determinism")
        self.collect = collect
        self.env: dict[str, frozenset] = {}
        self.adversary_vars: set[str] = set()
        self.return_tags: set = set()
        self.param_to_return: set = set()
        self.param_sinks: dict[tuple, ParamSink] = {}
        self.findings: list[Finding] = []
        self._finding_keys: set = set()

    # -- entry ----------------------------------------------------------

    def run(self) -> Summary:
        info = self.info
        for i, name in enumerate(info.params):
            self.env[name] = frozenset({param_tag(i)})
            if name in ("adversary", "adv"):
                self.adversary_vars.add(name)
        args = info.node.args
        pos = args.posonlyargs + args.args
        for p, d in zip(pos[len(pos) - len(args.defaults) :], args.defaults):
            self.env[p.arg] |= self.eval(d)
        for p, d in zip(args.kwonlyargs, args.kw_defaults):
            if d is not None:
                self.env[p.arg] |= self.eval(d)
        self.exec_block(info.node.body)
        return Summary(
            return_tags=frozenset(self.return_tags),
            param_to_return=frozenset(self.param_to_return),
            param_sinks=tuple(sorted(self.param_sinks.values())),
        )

    def _context(self) -> str:
        """The function's name relative to its module (``Cls.meth`` / ``fn``)."""
        return self.info.qname[len(self.mod.module) + 1 :]

    # -- findings / sinks -----------------------------------------------

    def _add_finding(self, policy: Policy, line: int, message: str) -> None:
        key = (policy.id, line, message)
        if key in self._finding_keys:
            return
        self._finding_keys.add(key)
        self.findings.append(
            Finding(
                path=self.relpath,
                line=line,
                rule=policy.id,
                message=message,
                fix_hint=policy.fix_hint,
            )
        )

    def _report_real(
        self, policy: Policy, taint: frozenset, line: int, reach: str
    ) -> None:
        """One finding per source label that reaches a sink description."""
        if not self.collect:
            return
        by_label: dict[str, Tag] = {}
        for tag in real_tags(taint):
            if tag.label in policy.labels:
                by_label.setdefault(tag.label, tag)
        for _, tag in sorted(by_label.items()):
            self._add_finding(
                policy, line, f"{tag.detail} ({tag.path}:{tag.line}) {reach}"
            )

    def sink(self, policy: Policy, taint: frozenset, detail: str, node: ast.AST) -> None:
        """Taint meets a sink *in this function*: report and export."""
        line = getattr(node, "lineno", 0)
        self._report_real(policy, taint, line, f"reaches {detail}")
        exported = f"{detail} inside `{self._context()}` ({self.relpath}:{line})"
        for tag in taint:
            if is_param(tag):
                key = (param_index(tag), policy.id, self.relpath, line)
                if key not in self.param_sinks:
                    self.param_sinks[key] = ParamSink(
                        param_index(tag), policy.id, exported, self.relpath, line
                    )

    def _apply_param_sink(
        self, policy: Policy, taint: frozenset, ps: ParamSink, call: ast.Call
    ) -> None:
        """A call argument flows into a sink inside the callee."""
        line = call.lineno
        self._report_real(policy, taint, line, f"flows into {ps.detail}")
        for tag in taint:
            if is_param(tag):
                key = (param_index(tag), ps.policy, ps.path, ps.line)
                if key not in self.param_sinks:
                    self.param_sinks[key] = ParamSink(
                        param_index(tag), ps.policy, ps.detail, ps.path, ps.line
                    )

    def _is_adversary_expr(self, node: ast.AST | None) -> bool:
        if isinstance(node, ast.Attribute) and node.attr == "adversary":
            return True
        if isinstance(node, ast.Name) and node.id in self.adversary_vars:
            return True
        return False

    def _check_store(self, target: ast.expr, taint: frozenset) -> None:
        """Sink checks for an attribute/subscript store."""
        if (
            self.lateness is not None
            and self.lateness.armed_in(self.mod.module)
            and isinstance(target, ast.Attribute)
            and self._is_adversary_expr(target.value)
        ):
            self.sink(
                self.lateness,
                taint,
                f"adversary object state `{_short(target)}`",
                target,
            )
        if self.determinism is not None and self.determinism.armed_in(self.mod.module):
            self.sink(
                self.determinism,
                taint,
                f"fingerprint-feeding state `{_short(target)}`",
                target,
            )

    # -- statements -----------------------------------------------------

    def exec_block(self, stmts: list) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def exec_stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Assign):
            taint = self.eval(node.value)
            for target in node.targets:
                self.assign(target, taint, node.value)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self.assign(node.target, self.eval(node.value), node.value)
        elif isinstance(node, ast.AugAssign):
            taint = self.eval(node.value) | self.eval(node.target)
            self.assign(node.target, taint, node.value)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                for tag in self.eval(node.value):
                    if is_param(tag):
                        self.param_to_return.add(param_index(tag))
                    else:
                        self.return_tags.add(tag)
        elif isinstance(node, ast.Expr):
            self.eval(node.value)
        elif isinstance(node, ast.If):
            self.eval(node.test)
            self.exec_block(node.body)
            self.exec_block(node.orelse)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self.assign(node.target, self.eval(node.iter), node.iter)
            for _ in range(2):  # one extra pass covers the loop back-edge
                self.exec_block(node.body)
            self.exec_block(node.orelse)
        elif isinstance(node, ast.While):
            self.eval(node.test)
            for _ in range(2):
                self.exec_block(node.body)
            self.exec_block(node.orelse)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                taint = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self.assign(item.optional_vars, taint, item.context_expr)
            self.exec_block(node.body)
        elif isinstance(node, ast.Try):
            self.exec_block(node.body)
            for handler in node.handlers:
                self.exec_block(handler.body)
            self.exec_block(node.orelse)
            self.exec_block(node.finalbody)
        elif isinstance(node, ast.Raise):
            self.eval(node.exc)
            self.eval(node.cause)
        elif isinstance(node, ast.Assert):
            self.eval(node.test)
            self.eval(node.msg)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
        # Nested defs/classes, imports, pass/break/continue/global: no flow.

    def assign(self, target: ast.expr, taint: frozenset, value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = taint
            if self._is_adversary_expr(value):
                self.adversary_vars.add(target.id)
            else:
                self.adversary_vars.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self.assign(elt, taint, value)
        elif isinstance(target, ast.Starred):
            self.assign(target.value, taint, value)
        elif isinstance(target, ast.Attribute):
            self.eval(target.value)
            self._check_store(target, taint)
        elif isinstance(target, ast.Subscript):
            self.eval(target.value)
            self.eval(target.slice)
            self._check_store(target, taint)

    # -- expressions ----------------------------------------------------

    def eval(self, node: ast.expr | None) -> frozenset:
        if node is None:
            return EMPTY
        if isinstance(node, ast.Name):
            return self.env.get(node.id, EMPTY)
        if isinstance(node, ast.Constant):
            return EMPTY
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return _union(self.eval(e) for e in node.elts)
        if isinstance(node, ast.Dict):
            return _union(
                self.eval(e) for e in list(node.keys) + list(node.values) if e
            )
        if isinstance(node, ast.BinOp):
            return self.eval(node.left) | self.eval(node.right)
        if isinstance(node, ast.BoolOp):
            return _union(self.eval(v) for v in node.values)
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand)
        if isinstance(node, ast.Compare):
            return self.eval(node.left) | _union(
                self.eval(c) for c in node.comparators
            )
        if isinstance(node, ast.Subscript):
            return self.eval(node.value) | self.eval(node.slice)
        if isinstance(node, ast.Slice):
            return (
                self.eval(node.lower) | self.eval(node.upper) | self.eval(node.step)
            )
        if isinstance(node, ast.IfExp):
            return self.eval(node.test) | self.eval(node.body) | self.eval(node.orelse)
        if isinstance(node, ast.JoinedStr):
            return _union(self.eval(v) for v in node.values)
        if isinstance(node, ast.FormattedValue):
            return self.eval(node.value)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            for gen in node.generators:
                self.assign(gen.target, self.eval(gen.iter), gen.iter)
                for test in gen.ifs:
                    self.eval(test)
            if isinstance(node, ast.DictComp):
                return self.eval(node.key) | self.eval(node.value)
            return self.eval(node.elt)
        if isinstance(node, ast.NamedExpr):
            taint = self.eval(node.value)
            self.assign(node.target, taint, node.value)
            return taint
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self.eval(node.value)
        if isinstance(node, ast.Yield):
            return self.eval(node.value) if node.value else EMPTY
        if isinstance(node, ast.Lambda):
            return EMPTY
        return EMPTY

    def _live_attr_tags(self, attr: str, detail: str, line: int) -> frozenset:
        if (
            self.lateness is not None
            and attr in LIVE_STATE_ATTRS
            and self.mod.in_packages(LIVE_SOURCE_PACKAGES)
        ):
            return frozenset({Tag("live-state", detail, self.relpath, line)})
        return EMPTY

    def _dotted_tags(self, dotted: str | None, line: int) -> frozenset:
        if dotted is None or self.determinism is None:
            return EMPTY
        label = dotted_source_label(dotted)
        if label is None:
            return EMPTY
        return frozenset({Tag(label, f"`{dotted}`", self.relpath, line)})

    def _eval_attribute(self, node: ast.Attribute) -> frozenset:
        taint = set(self.eval(node.value))
        taint |= self._live_attr_tags(
            node.attr, f"live state `{_short(node)}`", node.lineno
        )
        taint |= self._dotted_tags(self.mod.resolve(node), node.lineno)
        # `self.attr` where attr is a @property of the enclosing class: the
        # load is a call in disguise — splice in the property's summary.
        if isinstance(node.value, ast.Name) and node.value.id in ("self", "cls"):
            prop = self.index.resolve_property(self.mod, self.info.cls, node.attr)
            if prop is not None and prop.qname != self.info.qname:
                summary = self.summaries.get(prop.qname)
                if summary is not None:
                    taint |= summary.return_tags
        return frozenset(taint)

    def _eval_call(self, call: ast.Call) -> frozenset:
        func = call.func
        # getattr(obj, "name") smuggling: same semantics as obj.name.
        if (
            isinstance(func, ast.Name)
            and func.id == "getattr"
            and len(call.args) >= 2
            and isinstance(call.args[1], ast.Constant)
            and isinstance(call.args[1].value, str)
        ):
            attr = call.args[1].value
            taint = set(self.eval(call.args[0]))
            for extra in call.args[2:]:
                taint |= self.eval(extra)
            taint |= self._live_attr_tags(
                attr, f"live state `{_short(call)}`", call.lineno
            )
            base_dotted = self.mod.resolve(call.args[0])
            if base_dotted:
                taint |= self._dotted_tags(f"{base_dotted}.{attr}", call.lineno)
            return frozenset(taint)

        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
        dotted = self.mod.resolve(func)

        # The lateness sanitizer: AdversaryView(..., topology_lateness=...,
        # state_lateness=...).  Without both explicit keywords it is NOT a
        # sanitizer (and L3 flags the construction separately).
        if name == SANITIZER_NAME or (
            dotted is not None and dotted.endswith("." + SANITIZER_NAME)
        ):
            arg_taint = _union(
                [self.eval(a) for a in call.args]
                + [self.eval(kw.value) for kw in call.keywords]
            )
            kwargs = {kw.arg for kw in call.keywords if kw.arg is not None}
            if SANITIZER_REQUIRED_KWARGS <= kwargs:
                return frozenset(
                    t for t in arg_taint if t.label in _DETERMINISM_LABELS
                )
            return arg_taint

        # The decide() sink: every argument of an adversary decision call.
        if isinstance(func, ast.Attribute) and func.attr == "decide":
            self.eval(func.value)
            armed = self.lateness is not None and self.lateness.armed_in(
                self.mod.module
            )
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                taint = self.eval(arg)
                if armed:
                    self.sink(
                        self.lateness,
                        taint,
                        f"adversary decide() argument `{_short(arg)}`",
                        call,
                    )
            return EMPTY

        resolved = self.index.resolve_call(self.mod, self.info.cls, func)
        if resolved is not None:
            return self._eval_resolved_call(call, *resolved)

        # Unknown callee (builtin, third-party, dynamic): worst case — the
        # result carries everything the callee could have seen.
        taint = set(self.eval(func))
        for arg in call.args:
            taint |= self.eval(arg)
        for kw in call.keywords:
            taint |= self.eval(kw.value)
        return frozenset(taint)

    def _eval_resolved_call(
        self, call: ast.Call, info: FunctionInfo, bound: bool
    ) -> frozenset:
        summary: Summary = self.summaries.get(info.qname, Summary())
        offset = 1 if bound else 0
        arg_taints: dict[int, frozenset] = {}
        spill = EMPTY  # *args/**kwargs and arguments beyond known parameters
        for i, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                spill |= self.eval(arg.value)
                continue
            taint = self.eval(arg)
            idx = i + offset
            if idx < len(info.params):
                arg_taints[idx] = arg_taints.get(idx, EMPTY) | taint
            else:
                spill |= taint
        for kw in call.keywords:
            taint = self.eval(kw.value)
            idx = info.param_index(kw.arg) if kw.arg is not None else None
            if idx is None:
                spill |= taint
            else:
                arg_taints[idx] = arg_taints.get(idx, EMPTY) | taint
        result = set(summary.return_tags)
        for i in summary.param_to_return:
            result |= arg_taints.get(i, EMPTY)
        result |= spill
        for ps in summary.param_sinks:
            taint = arg_taints.get(ps.index)
            if not taint:
                continue
            policy = self._by_id.get(ps.policy)
            if policy is not None:
                self._apply_param_sink(policy, taint, ps, call)
        return frozenset(result)
