"""The flow engine: orchestrate parsing, summaries, policies, reporting.

``run_flow`` is the sibling of :func:`repro.analysis.lint.run_lint` and
shares its machinery deliberately: the same :class:`SourceModule`
construction (through a :class:`~repro.analysis.source_cache.SourceCache`,
so a combined lint+flow run parses each file once), the same
``# repro: allow(<rule>): <why>`` inline waivers, the same
``(path, rule, message)``-multiset baseline format, and the same
:class:`~repro.analysis.lint.findings.Finding` value object — which is
what lets one SARIF emitter serve both tools.

The run itself has three phases:

1. parse every file and index all functions (:class:`ProjectIndex`);
2. iterate :class:`FunctionAnalyzer` over every function until the
   summaries reach a fixpoint (bounded by ``max_depth`` passes — the
   maximum call-chain length taint is tracked through);
3. one reporting pass that collects findings, matches waivers, audits
   stale ``flow-*`` waivers, and applies the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.analysis.common import (
    apply_baseline,
    match_prefix_waivers,
    parse_modules,
    resolve_targets,
)
from repro.analysis.flow.callgraph import ProjectIndex
from repro.analysis.flow.policies import (
    ALL_POLICIES,
    FlowError,
    Policy,
)
from repro.analysis.flow.summaries import FunctionAnalyzer, Summary
from repro.analysis.lint.baseline import Baseline
from repro.analysis.lint.engine import LintError
from repro.analysis.lint.findings import Finding
from repro.analysis.lint.waivers import FLOW_RULE_PREFIX
from repro.analysis.source_cache import SourceCache

__all__ = [
    "DEFAULT_FLOW_BASELINE_NAME",
    "DEFAULT_MAX_DEPTH",
    "FlowReport",
    "run_flow",
]

#: File name looked up at the repository root by default.
DEFAULT_FLOW_BASELINE_NAME = "flow-baseline.json"

#: Default bound on interprocedural propagation (call-chain length).
DEFAULT_MAX_DEPTH = 8


@dataclass
class FlowReport:
    """Everything one flow run produced."""

    root: Path
    files: int
    functions: int
    passes: int
    policies: tuple
    findings: list = field(default_factory=list)
    waived: list = field(default_factory=list)
    baselined: list = field(default_factory=list)
    stale_baseline: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "root": str(self.root),
            "files": self.files,
            "functions": self.functions,
            "passes": self.passes,
            "policies": [p.id for p in self.policies],
            "counts": {
                "active": len(self.findings),
                "waived": len(self.waived),
                "baselined": len(self.baselined),
                "stale_baseline": len(self.stale_baseline),
            },
            "findings": [f.to_dict() for f in self.findings],
            "waived": [f.to_dict() for f in self.waived],
            "baselined": [f.to_dict() for f in self.baselined],
            "stale_baseline": self.stale_baseline,
        }

    def format_text(self) -> str:
        out: list[str] = []
        for f in self.findings:
            out.append(f.format())
            if f.fix_hint:
                out.append(f"    fix: {f.fix_hint}")
        for entry in self.stale_baseline:
            out.append(
                f"stale baseline entry: {entry['path']} [{entry['rule']}] "
                "no longer matches anything — remove it"
            )
        out.append(
            f"{self.files} file(s), {self.functions} function(s), "
            f"{self.passes} pass(es): {len(self.findings)} finding(s), "
            f"{len(self.waived)} waived, {len(self.baselined)} baselined"
        )
        return "\n".join(out)


def run_flow(
    paths: Iterable[Path | str] | None = None,
    *,
    root: Path | str | None = None,
    policies: Iterable[Policy] | None = None,
    baseline: Path | str | Baseline | None = None,
    max_depth: int = DEFAULT_MAX_DEPTH,
    cache: SourceCache | None = None,
    index: ProjectIndex | None = None,
) -> FlowReport:
    """Run the information-flow analysis and return a :class:`FlowReport`.

    Arguments mirror :func:`~repro.analysis.lint.run_lint`; ``max_depth``
    bounds the number of summary-propagation passes, i.e. the longest
    helper chain taint is tracked through.  Pass the same ``cache`` to
    both tools to parse each file once, and the same ``index`` to
    :func:`~repro.analysis.shard.run_shard_check` to build the call graph
    once (``index`` must have been built over the same module set).
    """
    policies = tuple(policies) if policies is not None else ALL_POLICIES
    if max_depth < 1:
        raise FlowError("max_depth must be at least 1")
    try:
        root, files = resolve_targets(paths, root)
    except LintError as exc:
        raise FlowError(str(exc)) from None
    if cache is None:
        cache = SourceCache(root)
    modules, active = parse_modules(files, cache, root)

    if index is None:
        index = ProjectIndex(modules)
    order = sorted(index.functions)

    # Phase 2: summaries to a fixpoint (or the depth bound).
    summaries: dict[str, Summary] = {}
    passes = 0
    for _ in range(max_depth):
        passes += 1
        changed = False
        for qname in order:
            analyzer = FunctionAnalyzer(
                index, summaries, index.functions[qname], policies, collect=False
            )
            summary = analyzer.run()
            if summaries.get(qname) != summary:
                summaries[qname] = summary
                changed = True
        if not changed:
            break

    # Phase 3: reporting pass with converged summaries.
    raw_by_module: dict[str, list[Finding]] = {mod.relpath: [] for mod in modules}
    for qname in order:
        analyzer = FunctionAnalyzer(
            index, summaries, index.functions[qname], policies, collect=True
        )
        analyzer.run()
        raw_by_module[analyzer.relpath].extend(analyzer.findings)

    # Stale flow waivers are audited by the shared helper (the linter's
    # W2 skips them: only this engine knows which flow findings exist).
    waived = match_prefix_waivers(
        modules,
        raw_by_module,
        prefix=FLOW_RULE_PREFIX,
        rule_ids={p.id for p in policies},
        audit_all=policies == ALL_POLICIES,
        engine="flow",
        active=active,
    )
    final, baselined, stale = apply_baseline(active, waived, baseline)
    return FlowReport(
        root=root,
        files=len(files),
        functions=len(index.functions),
        passes=passes,
        policies=policies,
        findings=final,
        waived=waived,
        baselined=baselined,
        stale_baseline=stale,
    )
