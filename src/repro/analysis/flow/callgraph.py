"""Project call graph: indexing functions and resolving call sites.

The :class:`ProjectIndex` maps every module-level function, class method,
and property under the analysed paths to a qualified name
(``module.func`` / ``module.Class.method``), then resolves call
expressions back to those names:

* ``helper(x)`` — a module-local function, or one pulled in by any
  ``import`` form (through the :class:`SourceModule` import map);
* ``pkg.mod.helper(x)`` — a dotted chain through an imported module;
* ``self.method(x)`` / ``cls.method(x)`` — a method of the *enclosing*
  class (single dispatch on the static class; inherited methods are
  resolved through project-local base classes by name);
* ``self.attr`` — when ``attr`` is a ``@property`` of the enclosing
  class, the attribute *load* resolves to the property function.

Anything else (calls on arbitrary objects, builtins, third-party code)
is deliberately unresolved: the abstract interpreter falls back to
worst-case propagation for those.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.lint.engine import SourceModule

__all__ = ["FunctionInfo", "ProjectIndex"]


def _is_property(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for deco in node.decorator_list:
        name = deco.id if isinstance(deco, ast.Name) else getattr(deco, "attr", None)
        if name in ("property", "cached_property"):
            return True
    return False


@dataclass
class FunctionInfo:
    """One analysable function with everything call resolution needs."""

    qname: str
    module: "SourceModule"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: str | None
    is_property: bool
    #: Parameter names in call order (``self``/``cls`` included for methods).
    params: tuple = ()
    #: Parameter defaults, aligned to the *tail* of ``params``.
    defaults: tuple = ()

    def __post_init__(self) -> None:
        a = self.node.args
        names = [p.arg for p in a.posonlyargs + a.args + a.kwonlyargs]
        if a.vararg:
            names.append(a.vararg.arg)
        if a.kwarg:
            names.append(a.kwarg.arg)
        self.params = tuple(names)
        self.defaults = tuple(a.defaults) + tuple(
            d for d in a.kw_defaults if d is not None
        )

    def param_index(self, name: str) -> int | None:
        try:
            return self.params.index(name)
        except ValueError:
            return None


class ProjectIndex:
    """Function/method/property index over a set of parsed modules."""

    def __init__(self, modules: list) -> None:
        self.modules = modules
        self.functions: dict[str, FunctionInfo] = {}
        #: ``(module, class) -> base class names`` for inherited-method lookup.
        self._bases: dict[tuple, tuple] = {}
        for mod in modules:
            self._index_module(mod)

    def _index_module(self, mod: "SourceModule") -> None:
        for node in mod.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add(mod, node, cls=None)
            elif isinstance(node, ast.ClassDef):
                bases = tuple(
                    b for b in (mod.resolve(base) for base in node.bases) if b
                )
                self._bases[(mod.module, node.name)] = bases
                for child in node.body:
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._add(mod, child, cls=node.name)

    def _add(
        self,
        mod: "SourceModule",
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        cls: str | None,
    ) -> None:
        qname = f"{mod.module}.{cls}.{node.name}" if cls else f"{mod.module}.{node.name}"
        self.functions[qname] = FunctionInfo(
            qname=qname, module=mod, node=node, cls=cls, is_property=_is_property(node)
        )

    # -- resolution -----------------------------------------------------

    def _method(self, module: str, cls: str, name: str) -> FunctionInfo | None:
        """A method on ``module.cls``, walking project-local base classes."""
        seen: set[tuple] = set()
        stack = [(module, cls)]
        while stack:
            key = stack.pop(0)
            if key in seen:
                continue
            seen.add(key)
            info = self.functions.get(f"{key[0]}.{key[1]}.{name}")
            if info is not None:
                return info
            for base in self._bases.get(key, ()):
                head, _, tail = base.rpartition(".")
                if head and tail:
                    stack.append((head, tail))
        return None

    def resolve_call(
        self, mod: "SourceModule", cls: str | None, func: ast.expr
    ) -> tuple[FunctionInfo, bool] | None:
        """``(callee, is_bound)`` for a call's ``func`` expression, if known.

        ``is_bound`` means the receiver is implicit (``self.m(x)``), so the
        call's first positional argument maps to the callee's parameter 1.
        """
        if isinstance(func, ast.Name):
            info = self.functions.get(f"{mod.module}.{func.id}")
            if info is not None:
                return info, False
            dotted = mod.import_map.get(func.id)
            if dotted is not None:
                info = self.functions.get(dotted)
                if info is not None:
                    return info, False
            return None
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name) and base.id in ("self", "cls") and cls:
                info = self._method(mod.module, cls, func.attr)
                if info is not None:
                    return info, True
                return None
            dotted = mod.resolve(func)
            if dotted is not None:
                info = self.functions.get(dotted)
                if info is not None:
                    # Resolved through a module/class path: unbound spelling.
                    return info, False
        return None

    def resolve_property(
        self, mod: "SourceModule", cls: str | None, attr: str
    ) -> FunctionInfo | None:
        """The property function behind ``self.<attr>`` in class ``cls``."""
        if cls is None:
            return None
        info = self._method(mod.module, cls, attr)
        if info is not None and info.is_property:
            return info
        return None
