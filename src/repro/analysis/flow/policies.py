"""Declarative source → sanitizer → sink policies of the flow analysis.

A :class:`Policy` names the taint labels it tracks, the packages in which
its sinks are armed, and the modules exempt from it.  The *mechanics* —
how sources are recognised, how taint propagates, how sanitizers strip
labels — live in :mod:`~repro.analysis.flow.summaries`; this module is
the single place that says **what** each policy means:

**F1 ``flow-lateness``** — the paper's security argument (Section 2,
Lemmas 3-4) is void the moment the adversary touches state fresher than
its ``(a, b)`` lateness.  Sources are the engine's live objects (trace,
network, lifecycle, churn ledger, per-node protocols and RNG streams);
the only sanitizer is an :class:`~repro.adversary.view.AdversaryView`
constructed with explicit lateness keywords; sinks are the arguments of
``.decide(...)`` calls and anything assigned onto an adversary instance.

**F2 ``flow-determinism``** — a run must stay a pure function of its
seed.  Sources are wall-clock reads, environment reads, and global-RNG
draws (the same vocabulary as lint rules D1/D2/D5, but tracked through
assignments, helpers and ``getattr``); there is no sanitizer; sinks are
stores into object state inside the fingerprint-feeding packages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.analysis.lint.rules_determinism import (
    _NUMPY_GLOBAL,
    _WALLCLOCK,
    FINGERPRINT_PACKAGES,
)

__all__ = [
    "FlowError",
    "Policy",
    "LATENESS",
    "DETERMINISM",
    "ALL_POLICIES",
    "LIVE_STATE_ATTRS",
    "LIVE_SOURCE_PACKAGES",
    "SANITIZER_NAME",
    "SANITIZER_REQUIRED_KWARGS",
    "dotted_source_label",
    "resolve_policies",
    "policy_table",
]


class FlowError(Exception):
    """Invalid flow invocation (unknown policy, bad path, ...)."""


@dataclass(frozen=True)
class Policy:
    """One source→sanitizer→sink check, identified like a lint rule."""

    id: str
    code: str
    description: str
    fix_hint: str
    #: Taint labels this policy acts on when they reach one of its sinks.
    labels: frozenset
    #: Packages in which this policy's sinks are armed.
    sink_packages: tuple
    #: Modules whose sink hits are suppressed (documented design holes).
    exempt_modules: tuple = ()

    def armed_in(self, module: str) -> bool:
        if module in self.exempt_modules:
            return False
        return any(
            module == p or module.startswith(p + ".") for p in self.sink_packages
        )


#: Engine attributes holding live, current-round world state.  An
#: attribute load (or ``getattr``) of one of these names inside the
#: simulator packages is a lateness source.
LIVE_STATE_ATTRS = frozenset(
    {
        "trace",
        "network",
        "lifecycle",
        "ledger",
        "metrics",
        "_protocols",
        "_rngs",
        "rng_service",
    }
)

#: Packages whose live-named attributes are treated as lateness sources.
LIVE_SOURCE_PACKAGES = ("repro.sim", "repro.core", "repro.overlay", "repro.faults")

#: The lateness sanitizer: a call to this class *with both required
#: keywords* launders live-state taint (the view clamps what it exposes).
SANITIZER_NAME = "AdversaryView"
SANITIZER_REQUIRED_KWARGS = frozenset({"topology_lateness", "state_lateness"})


def dotted_source_label(dotted: str) -> str | None:
    """The determinism label a resolved dotted name carries, if any."""
    if dotted in _WALLCLOCK:
        return "wallclock"
    if dotted in ("os.environ", "os.getenv"):
        return "env"
    if dotted == "random" or dotted.startswith("random."):
        return "global-rng"
    if dotted.startswith("numpy.random."):
        if dotted.rsplit(".", 1)[1] in _NUMPY_GLOBAL:
            return "global-rng"
    return None


LATENESS = Policy(
    id="flow-lateness",
    code="F1",
    description=(
        "live engine state (trace/network/lifecycle/ledger/node protocols/RNG "
        "streams) must pass through AdversaryView(topology_lateness=..., "
        "state_lateness=...) before reaching the adversary — through any number "
        "of assignments and helper calls"
    ),
    fix_hint=(
        "hand the adversary an AdversaryView built with explicit lateness "
        "keywords; never a raw engine object or anything derived from one"
    ),
    labels=frozenset({"live-state"}),
    sink_packages=LIVE_SOURCE_PACKAGES,
)

DETERMINISM = Policy(
    id="flow-determinism",
    code="F2",
    description=(
        "wall-clock, environment, and global-RNG values must not reach "
        "fingerprint-feeding state, even via helpers, aliases, or getattr"
    ),
    fix_hint=(
        "derive the value from the round counter or a seeded RngService "
        "stream; measurement-only code belongs in the exempt modules"
    ),
    labels=frozenset({"wallclock", "env", "global-rng"}),
    sink_packages=FINGERPRINT_PACKAGES,
    # The profiler measures wall time by design (same grandfathering as the
    # D2 baseline entry); benchrec's opt-in env read is sanctioned by D5.
    exempt_modules=("repro.sim.profile", "repro.util.benchrec"),
)

#: Every shipped policy, in code order.
ALL_POLICIES: tuple = (LATENESS, DETERMINISM)


def resolve_policies(spec: str | Iterable[str] | None) -> tuple:
    """Policies selected by a comma/space separated list of ids or codes."""
    if spec is None:
        return ALL_POLICIES
    if isinstance(spec, str):
        wanted = [s for chunk in spec.split(",") for s in chunk.split()]
    else:
        wanted = list(spec)
    wanted = [w.strip().lower() for w in wanted if w.strip()]
    if not wanted:
        return ALL_POLICIES
    by_key = {p.id: p for p in ALL_POLICIES}
    by_key.update({p.code.lower(): p for p in ALL_POLICIES})
    selected: list = []
    for key in wanted:
        policy = by_key.get(key)
        if policy is None:
            known = ", ".join(f"{p.code}/{p.id}" for p in ALL_POLICIES)
            raise FlowError(f"unknown policy {key!r}; known policies: {known}")
        if policy not in selected:
            selected.append(policy)
    return tuple(selected)


def policy_table() -> str:
    """A plain-text table of every policy (for ``repro flow --list-policies``)."""
    width = max(len(p.id) for p in ALL_POLICIES)
    lines = []
    for policy in ALL_POLICIES:
        lines.append(f"{policy.code:>4}  {policy.id:<{width}}  {policy.description}")
    return "\n".join(lines)
