"""``repro.analysis.flow`` — interprocedural information-flow analysis.

Where the linter (:mod:`repro.analysis.lint`) checks what a single
expression *looks like*, this package checks where values *go*: a
project-wide taint analysis with per-function summaries, guarding the
two invariants with declarative **source → sanitizer → sink** policies:

1. **F1 lateness** — live engine state reaches the adversary only
   through an :class:`~repro.adversary.view.AdversaryView` built with
   explicit lateness keywords — even when it travels through variables,
   helper functions, or ``getattr``;
2. **F2 determinism** — wall-clock, environment, and global-RNG values
   never reach fingerprint-feeding state, interprocedurally.

Run it as ``repro flow`` (see ``docs/ANALYSIS.md``), or from code::

    from repro.analysis.flow import run_flow
    report = run_flow(root=repo_root)   # defaults: src/repro, all policies
    assert report.ok, report.format_text()

Findings share the linter's waiver syntax (``# repro: allow(flow-…): …``)
and baseline format (``flow-baseline.json``).
"""

from repro.analysis.flow.callgraph import FunctionInfo, ProjectIndex
from repro.analysis.flow.engine import (
    DEFAULT_FLOW_BASELINE_NAME,
    DEFAULT_MAX_DEPTH,
    FlowReport,
    run_flow,
)
from repro.analysis.flow.policies import (
    ALL_POLICIES,
    DETERMINISM,
    LATENESS,
    LIVE_SOURCE_PACKAGES,
    LIVE_STATE_ATTRS,
    SANITIZER_NAME,
    SANITIZER_REQUIRED_KWARGS,
    FlowError,
    Policy,
    dotted_source_label,
    policy_table,
    resolve_policies,
)
from repro.analysis.flow.summaries import FunctionAnalyzer, ParamSink, Summary
from repro.analysis.flow.taint import (
    EMPTY,
    PARAM_LABEL,
    Tag,
    Taint,
    is_param,
    labels_of,
    param_index,
    param_tag,
    real_tags,
)

__all__ = [
    "ALL_POLICIES",
    "DEFAULT_FLOW_BASELINE_NAME",
    "DEFAULT_MAX_DEPTH",
    "DETERMINISM",
    "EMPTY",
    "FlowError",
    "FlowReport",
    "FunctionAnalyzer",
    "FunctionInfo",
    "LATENESS",
    "LIVE_SOURCE_PACKAGES",
    "LIVE_STATE_ATTRS",
    "PARAM_LABEL",
    "ParamSink",
    "Policy",
    "ProjectIndex",
    "SANITIZER_NAME",
    "SANITIZER_REQUIRED_KWARGS",
    "Summary",
    "Tag",
    "Taint",
    "dotted_source_label",
    "is_param",
    "labels_of",
    "param_index",
    "param_tag",
    "policy_table",
    "real_tags",
    "resolve_policies",
    "run_flow",
]
