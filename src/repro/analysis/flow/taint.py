"""The taint model of the flow analysis.

A *tag* is one unit of taint: a label naming the kind of information
(``live-state``, ``wallclock``, ``env``, ``global-rng``) plus the source
location and a human-readable description of where it entered the
program.  Tags travel through the abstract interpreter as frozen sets, so
every finding can say exactly which source reached which sink.

Inside a function body, parameters carry *placeholder* tags (label
``param``) whose detail is the parameter index.  When a call site applies
a callee's summary, placeholder tags are substituted by the taints of the
actual arguments — that substitution is the whole interprocedural story.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PARAM_LABEL",
    "Tag",
    "Taint",
    "EMPTY",
    "param_tag",
    "is_param",
    "param_index",
    "real_tags",
    "labels_of",
]

#: Label of the placeholder tags that stand for "whatever taint the
#: caller's argument carries".
PARAM_LABEL = "param"


@dataclass(frozen=True, order=True)
class Tag:
    """One unit of taint: a label plus the provenance of its source."""

    label: str
    detail: str
    path: str
    line: int


Taint = frozenset  # of Tag
EMPTY: Taint = frozenset()


def param_tag(index: int) -> Tag:
    """The placeholder tag for parameter ``index`` of the current function."""
    return Tag(PARAM_LABEL, str(index), "", 0)


def is_param(tag: Tag) -> bool:
    return tag.label == PARAM_LABEL


def param_index(tag: Tag) -> int:
    return int(tag.detail)


def real_tags(taint: Taint) -> list[Tag]:
    """The non-placeholder tags of a taint set, in deterministic order."""
    return sorted(t for t in taint if not is_param(t))


def labels_of(taint: Taint) -> frozenset:
    """The set of labels present in ``taint`` (placeholders included)."""
    return frozenset(t.label for t in taint)
