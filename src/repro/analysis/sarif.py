"""SARIF 2.1.0 emission shared by ``repro lint`` and ``repro flow``.

Both tools produce the same :class:`~repro.analysis.lint.findings.Finding`
value objects, so one emitter covers them: :func:`sarif_report` renders a
finding list as a single-run SARIF log that GitHub code scanning accepts
(``github/codeql-action/upload-sarif``), turning every finding into an
inline annotation on pull requests.

:func:`validate_sarif` is a structural self-check against the parts of
the SARIF 2.1.0 spec the emitter relies on — it is what the test suite
(and the CI job) validate emitted documents with, since the full OASIS
JSON schema is not vendored.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.analysis.lint.findings import Finding

__all__ = ["SARIF_VERSION", "SARIF_SCHEMA_URI", "sarif_report", "validate_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://docs.oasis-open.org/sarif/sarif/v2.1.0/cos02/schemas/"
    "sarif-schema-2.1.0.json"
)

#: SARIF result levels accepted by code scanning.
_LEVELS = ("error", "warning", "note", "none")


def _level(severity: str) -> str:
    return severity if severity in _LEVELS else "warning"


def sarif_report(
    findings: Iterable[Finding],
    *,
    tool_name: str,
    rule_meta: dict[str, dict] | None = None,
    root: Path | str | None = None,
    information_uri: str = "https://github.com/paper-repro/lds-swarm",
) -> dict:
    """Render findings as a SARIF 2.1.0 log (one run, one tool driver).

    ``rule_meta`` maps rule ids to ``{"description": ..., "help": ...}``;
    rules that appear only in findings get a minimal stub entry, so the
    document is always internally consistent.  ``root`` becomes the
    ``SRCROOT`` uri base, letting viewers resolve the relative paths.
    """
    findings = list(findings)
    meta = dict(rule_meta or {})
    rule_ids = list(meta)
    for f in findings:
        if f.rule not in meta:
            meta[f.rule] = {"description": f"{f.rule} finding", "help": f.fix_hint}
            rule_ids.append(f.rule)
    rule_index = {rid: i for i, rid in enumerate(rule_ids)}

    rules = []
    for rid in rule_ids:
        entry: dict = {
            "id": rid,
            "shortDescription": {"text": meta[rid].get("description") or rid},
            "defaultConfiguration": {"level": _level(meta[rid].get("level", "error"))},
        }
        help_text = meta[rid].get("help")
        if help_text:
            entry["help"] = {"text": help_text}
        rules.append(entry)

    results = []
    for f in findings:
        results.append(
            {
                "ruleId": f.rule,
                "ruleIndex": rule_index[f.rule],
                "level": _level(f.severity),
                "message": {"text": f.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": f.path.replace("\\", "/"),
                                "uriBaseId": "SRCROOT",
                            },
                            # SARIF regions are 1-based; clamp findings that
                            # anchor to a whole file (line 0).
                            "region": {"startLine": max(1, f.line)},
                        }
                    }
                ],
            }
        )

    run: dict = {
        "tool": {
            "driver": {
                "name": tool_name,
                "informationUri": information_uri,
                "rules": rules,
            }
        },
        "columnKind": "utf16CodeUnits",
        "results": results,
    }
    if root is not None:
        run["originalUriBaseIds"] = {
            "SRCROOT": {"uri": Path(root).resolve().as_uri() + "/"}
        }
    return {"$schema": SARIF_SCHEMA_URI, "version": SARIF_VERSION, "runs": [run]}


def validate_sarif(doc: dict) -> list[str]:
    """Structural problems of a SARIF document (empty list = valid).

    Checks the SARIF 2.1.0 requirements this repo's emitter and consumers
    depend on: the version marker, the run/tool/driver skeleton, rule
    entries with ids, and results with messages and 1-based regions whose
    ``ruleId`` resolves against the driver's rule table.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not an object"]
    if doc.get("version") != SARIF_VERSION:
        problems.append(f"version must be {SARIF_VERSION!r}, got {doc.get('version')!r}")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        return problems + ["runs must be a non-empty array"]
    for ri, run in enumerate(runs):
        where = f"runs[{ri}]"
        driver = (run.get("tool") or {}).get("driver") if isinstance(run, dict) else None
        if not isinstance(driver, dict) or not driver.get("name"):
            problems.append(f"{where}: tool.driver.name is required")
            driver = {}
        rules = driver.get("rules", [])
        rule_ids = set()
        for si, rule in enumerate(rules):
            if not isinstance(rule, dict) or not rule.get("id"):
                problems.append(f"{where}: rules[{si}] lacks an id")
            else:
                rule_ids.add(rule["id"])
        for pi, result in enumerate(run.get("results", []) if isinstance(run, dict) else []):
            rwhere = f"{where}.results[{pi}]"
            if not isinstance(result, dict):
                problems.append(f"{rwhere}: not an object")
                continue
            message = result.get("message")
            if not isinstance(message, dict) or not message.get("text"):
                problems.append(f"{rwhere}: message.text is required")
            rule_id = result.get("ruleId")
            if rule_ids and rule_id not in rule_ids:
                problems.append(f"{rwhere}: ruleId {rule_id!r} not in driver rules")
            for li, loc in enumerate(result.get("locations", [])):
                phys = loc.get("physicalLocation", {}) if isinstance(loc, dict) else {}
                art = phys.get("artifactLocation", {})
                uri = art.get("uri")
                if not uri or "\\" in str(uri):
                    problems.append(
                        f"{rwhere}.locations[{li}]: artifact uri must be a "
                        "forward-slash relative path"
                    )
                region = phys.get("region", {})
                start = region.get("startLine")
                if not isinstance(start, int) or start < 1:
                    problems.append(
                        f"{rwhere}.locations[{li}]: region.startLine must be >= 1"
                    )
    return problems
