"""Balls-into-bins occupancy laws — the machinery behind Lemma 11.

Each forwarding step of A_ROUTING throws ``K ~ r * |holders|`` message copies
(balls) uniformly into the next swarm's ``m`` members (bins); a bin that
receives at least one ball "holds" the message.  The number of occupied bins
is a sum of negatively associated indicators (Dubhashi & Ranjan), so Chernoff
concentration applies — that is the whole proof of Lemma 11.  These helpers
compute the exact occupancy law and the minimum ``r`` that keeps a target
fraction of each swarm holding the message.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "expected_occupied_fraction",
    "occupied_bins_sample",
    "min_r_for_occupancy",
    "survival_fixpoint",
]


def expected_occupied_fraction(balls: int, bins: int) -> float:
    """``E[fraction of bins with >= 1 ball] = 1 - (1 - 1/m)^K``."""
    if bins <= 0:
        raise ValueError("bins must be positive")
    if balls < 0:
        raise ValueError("balls must be non-negative")
    return 1.0 - (1.0 - 1.0 / bins) ** balls


def occupied_bins_sample(
    balls: int, bins: int, rng: np.random.Generator, trials: int = 1
) -> np.ndarray:
    """Monte-Carlo samples of the occupied-bin count."""
    if bins <= 0:
        raise ValueError("bins must be positive")
    out = np.empty(trials, dtype=np.int64)
    for i in range(trials):
        hits = rng.integers(0, bins, size=balls)
        out[i] = np.unique(hits).size
    return out


def min_r_for_occupancy(
    holder_fraction: float, target_fraction: float
) -> int:
    """Smallest integer ``r`` with ``1 - exp(-r * holder_fraction) >= target``.

    If a fraction ``h`` of the current swarm holds the message and each
    holder sends ``r`` copies into a same-sized next swarm, the expected
    occupied fraction is ``~ 1 - e^{-r h}``.  This inverts that map — the
    quantitative version of the paper's "for a suitable r in Theta(1)".
    """
    if not 0.0 < holder_fraction <= 1.0:
        raise ValueError("holder_fraction must lie in (0, 1]")
    if not 0.0 < target_fraction < 1.0:
        raise ValueError("target_fraction must lie in (0, 1)")
    r = math.log(1.0 / (1.0 - target_fraction)) / holder_fraction
    return max(1, math.ceil(r))


def survival_fixpoint(r: int, good_fraction: float, iterations: int = 64) -> float:
    """Steady-state holder fraction of the forward–handover recursion.

    One step maps the holder fraction ``h`` to
    ``g * (1 - e^{-r h})`` where ``g`` is the good (surviving) fraction of
    each swarm.  The fixpoint tells whether a given ``(r, goodness)`` pair
    sustains routing (fixpoint bounded away from 0) or collapses.
    """
    if r < 1:
        raise ValueError("r must be at least 1")
    if not 0.0 < good_fraction <= 1.0:
        raise ValueError("good_fraction must lie in (0, 1]")
    h = 1.0
    for _ in range(iterations):
        h = good_fraction * (1.0 - math.exp(-r * h))
    return h
