"""Analysis helpers: tail bounds, occupancy laws, connectivity, estimators."""

from repro.analysis.balls_bins import (
    expected_occupied_fraction,
    min_r_for_occupancy,
    occupied_bins_sample,
    survival_fixpoint,
)
from repro.analysis.chernoff import (
    deviation_for_failure_prob,
    lower_tail,
    min_mu_for_whp,
    upper_tail,
    whp_threshold,
)
from repro.analysis.connectivity import (
    component_of,
    components,
    is_connected,
    is_isolated,
    knowledge_graph_of_gossip,
)
from repro.analysis.estimators import (
    RateEstimate,
    chi_square_uniform,
    fit_log_power,
    fit_power_law,
    wilson_interval,
)

__all__ = [
    "RateEstimate",
    "chi_square_uniform",
    "component_of",
    "components",
    "deviation_for_failure_prob",
    "expected_occupied_fraction",
    "fit_log_power",
    "fit_power_law",
    "is_connected",
    "is_isolated",
    "knowledge_graph_of_gossip",
    "lower_tail",
    "min_mu_for_whp",
    "min_r_for_occupancy",
    "occupied_bins_sample",
    "survival_fixpoint",
    "upper_tail",
    "whp_threshold",
    "wilson_interval",
]
