"""The shard-check engine: parse, infer roles, run rules, report.

``run_shard_check`` is the third sibling of
:func:`repro.analysis.lint.run_lint` and
:func:`repro.analysis.flow.run_flow`, and shares their machinery on
purpose: the same :class:`~repro.analysis.lint.engine.SourceModule`
construction through a shared
:class:`~repro.analysis.source_cache.SourceCache` (one parse serves all
four tools), the same ``# repro: allow(<rule>): <why>`` inline waivers
(``shard-*`` prefixed — the linter's W2 skips them and this engine audits
their staleness), the same ``(path, rule, message)``-multiset baseline
format (``shard-baseline.json``), and the same
:class:`~repro.analysis.lint.findings.Finding` value object that feeds
the shared SARIF emitter.

The run has three phases:

1. parse every file and index the call graph (:class:`ProjectIndex`,
   reusable across flow and shard via the ``index`` argument);
2. infer a process role for every function
   (:func:`~repro.analysis.shard.roles.infer_roles`);
3. one reporting pass running rules S1–S5, matching ``shard-*`` waivers,
   auditing stale ones, and applying the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.analysis.common import (
    apply_baseline,
    match_prefix_waivers,
    parse_modules,
    resolve_targets,
)
from repro.analysis.flow.callgraph import ProjectIndex
from repro.analysis.lint.baseline import Baseline
from repro.analysis.lint.findings import Finding
from repro.analysis.lint.waivers import SHARD_RULE_PREFIX
from repro.analysis.shard.roles import RoleMap, infer_roles
from repro.analysis.shard.rules import (
    ALL_SHARD_RULES,
    ShardContext,
    ShardRule,
)
from repro.analysis.source_cache import SourceCache

__all__ = [
    "DEFAULT_SHARD_BASELINE_NAME",
    "ShardReport",
    "run_shard_check",
]

#: File name looked up at the repository root by default.
DEFAULT_SHARD_BASELINE_NAME = "shard-baseline.json"


@dataclass
class ShardReport:
    """Everything one shard-check run produced."""

    root: Path
    files: int
    functions: int
    roles: RoleMap
    rules: tuple
    findings: list = field(default_factory=list)
    waived: list = field(default_factory=list)
    baselined: list = field(default_factory=list)
    stale_baseline: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "root": str(self.root),
            "files": self.files,
            "functions": self.functions,
            "roles": self.roles.counts(),
            "rules": [r.id for r in self.rules],
            "counts": {
                "active": len(self.findings),
                "waived": len(self.waived),
                "baselined": len(self.baselined),
                "stale_baseline": len(self.stale_baseline),
            },
            "findings": [f.to_dict() for f in self.findings],
            "waived": [f.to_dict() for f in self.waived],
            "baselined": [f.to_dict() for f in self.baselined],
            "stale_baseline": self.stale_baseline,
        }

    def format_text(self) -> str:
        out: list[str] = []
        for f in self.findings:
            out.append(f.format())
            if f.fix_hint:
                out.append(f"    fix: {f.fix_hint}")
        for entry in self.stale_baseline:
            out.append(
                f"stale baseline entry: {entry['path']} [{entry['rule']}] "
                "no longer matches anything — remove it"
            )
        counts = self.roles.counts()
        out.append(
            f"{self.files} file(s), {self.functions} function(s) "
            f"({counts['master']} master / {counts['worker']} worker / "
            f"{counts['shared']} shared): {len(self.findings)} finding(s), "
            f"{len(self.waived)} waived, {len(self.baselined)} baselined"
        )
        return "\n".join(out)


def run_shard_check(
    paths: Iterable[Path | str] | None = None,
    *,
    root: Path | str | None = None,
    rules: Iterable[ShardRule] | None = None,
    baseline: Path | str | Baseline | None = None,
    cache: SourceCache | None = None,
    index: ProjectIndex | None = None,
) -> ShardReport:
    """Run the shard analyzer and return a :class:`ShardReport`.

    Arguments mirror :func:`~repro.analysis.lint.run_lint`.  Pass the same
    ``cache`` as lint/flow to parse each file once, and the same ``index``
    as :func:`~repro.analysis.flow.run_flow` to build the call graph once
    (the umbrella ``repro check`` command does both).
    """
    rules = tuple(rules) if rules is not None else ALL_SHARD_RULES
    root, files = resolve_targets(paths, root)
    if cache is None:
        cache = SourceCache(root)
    modules, active = parse_modules(files, cache, root)

    if index is None:
        index = ProjectIndex(modules)
    role_map = infer_roles(index)
    ctx = ShardContext(index=index, roles=role_map)

    raw_by_module: dict[str, list[Finding]] = {mod.relpath: [] for mod in modules}
    for rule in rules:
        for f in rule.check(ctx):
            raw_by_module.setdefault(f.path, []).append(f)

    # Stale shard waivers are audited by the shared helper (the linter's
    # W2 skips them: only this engine knows which shard findings exist).
    waived = match_prefix_waivers(
        modules,
        raw_by_module,
        prefix=SHARD_RULE_PREFIX,
        rule_ids={r.id for r in rules},
        audit_all=rules == ALL_SHARD_RULES,
        engine="shard",
        active=active,
    )
    final, baselined, stale = apply_baseline(active, waived, baseline)
    return ShardReport(
        root=root,
        files=len(files),
        functions=len(index.functions),
        roles=role_map,
        rules=rules,
        findings=final,
        waived=waived,
        baselined=baselined,
        stale_baseline=stale,
    )
