"""The shard-check engine: parse, infer roles, run rules, report.

``run_shard_check`` is the third sibling of
:func:`repro.analysis.lint.run_lint` and
:func:`repro.analysis.flow.run_flow`, and shares their machinery on
purpose: the same :class:`~repro.analysis.lint.engine.SourceModule`
construction through a shared
:class:`~repro.analysis.source_cache.SourceCache` (one parse serves all
three tools), the same ``# repro: allow(<rule>): <why>`` inline waivers
(``shard-*`` prefixed — the linter's W2 skips them and this engine audits
their staleness), the same ``(path, rule, message)``-multiset baseline
format (``shard-baseline.json``), and the same
:class:`~repro.analysis.lint.findings.Finding` value object that feeds
the shared SARIF emitter.

The run has three phases:

1. parse every file and index the call graph (:class:`ProjectIndex`,
   reusable across flow and shard via the ``index`` argument);
2. infer a process role for every function
   (:func:`~repro.analysis.shard.roles.infer_roles`);
3. one reporting pass running rules S1–S5, matching ``shard-*`` waivers,
   auditing stale ones, and applying the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.analysis.flow.callgraph import ProjectIndex
from repro.analysis.lint.baseline import Baseline
from repro.analysis.lint.engine import LintError
from repro.analysis.lint.findings import Finding
from repro.analysis.lint.waivers import SHARD_RULE_PREFIX
from repro.analysis.shard.roles import RoleMap, infer_roles
from repro.analysis.shard.rules import (
    ALL_SHARD_RULES,
    ShardContext,
    ShardRule,
)
from repro.analysis.source_cache import SourceCache, collect_py_files

__all__ = [
    "DEFAULT_SHARD_BASELINE_NAME",
    "ShardReport",
    "run_shard_check",
]

#: File name looked up at the repository root by default.
DEFAULT_SHARD_BASELINE_NAME = "shard-baseline.json"


@dataclass
class ShardReport:
    """Everything one shard-check run produced."""

    root: Path
    files: int
    functions: int
    roles: RoleMap
    rules: tuple
    findings: list = field(default_factory=list)
    waived: list = field(default_factory=list)
    baselined: list = field(default_factory=list)
    stale_baseline: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "root": str(self.root),
            "files": self.files,
            "functions": self.functions,
            "roles": self.roles.counts(),
            "rules": [r.id for r in self.rules],
            "counts": {
                "active": len(self.findings),
                "waived": len(self.waived),
                "baselined": len(self.baselined),
                "stale_baseline": len(self.stale_baseline),
            },
            "findings": [f.to_dict() for f in self.findings],
            "waived": [f.to_dict() for f in self.waived],
            "baselined": [f.to_dict() for f in self.baselined],
            "stale_baseline": self.stale_baseline,
        }

    def format_text(self) -> str:
        out: list[str] = []
        for f in self.findings:
            out.append(f.format())
            if f.fix_hint:
                out.append(f"    fix: {f.fix_hint}")
        for entry in self.stale_baseline:
            out.append(
                f"stale baseline entry: {entry['path']} [{entry['rule']}] "
                "no longer matches anything — remove it"
            )
        counts = self.roles.counts()
        out.append(
            f"{self.files} file(s), {self.functions} function(s) "
            f"({counts['master']} master / {counts['worker']} worker / "
            f"{counts['shared']} shared): {len(self.findings)} finding(s), "
            f"{len(self.waived)} waived, {len(self.baselined)} baselined"
        )
        return "\n".join(out)


def run_shard_check(
    paths: Iterable[Path | str] | None = None,
    *,
    root: Path | str | None = None,
    rules: Iterable[ShardRule] | None = None,
    baseline: Path | str | Baseline | None = None,
    cache: SourceCache | None = None,
    index: ProjectIndex | None = None,
) -> ShardReport:
    """Run the shard analyzer and return a :class:`ShardReport`.

    Arguments mirror :func:`~repro.analysis.lint.run_lint`.  Pass the same
    ``cache`` as lint/flow to parse each file once, and the same ``index``
    as :func:`~repro.analysis.flow.run_flow` to build the call graph once
    (the umbrella ``repro check`` command does both).
    """
    rules = tuple(rules) if rules is not None else ALL_SHARD_RULES
    root = Path(root) if root is not None else Path.cwd()
    root = root.resolve()
    targets = [Path(p) for p in paths] if paths is not None else [root / "src" / "repro"]
    try:
        files = collect_py_files(targets)
    except FileNotFoundError as exc:
        raise LintError(str(exc)) from None
    if cache is None:
        cache = SourceCache(root)

    modules = []
    active: list[Finding] = []
    for path in files:
        try:
            modules.append(cache.module(path))
        except SyntaxError as exc:
            try:
                rel = path.relative_to(root).as_posix()
            except ValueError:
                rel = path.as_posix()
            active.append(
                Finding(
                    path=rel,
                    line=exc.lineno or 0,
                    rule="parse-error",
                    message=f"file does not parse: {exc.msg}",
                )
            )

    if index is None:
        index = ProjectIndex(modules)
    role_map = infer_roles(index)
    ctx = ShardContext(index=index, roles=role_map)

    raw_by_module: dict[str, list[Finding]] = {mod.relpath: [] for mod in modules}
    for rule in rules:
        for f in rule.check(ctx):
            raw_by_module.setdefault(f.path, []).append(f)

    rule_ids = {r.id for r in rules}
    waived: list[Finding] = []
    for mod in modules:
        raw = sorted(raw_by_module.get(mod.relpath, []))
        shard_waivers = [
            w for w in mod.waivers if w.rule.startswith(SHARD_RULE_PREFIX)
        ]
        for w in shard_waivers:
            w.used = False
        live = [w for w in shard_waivers if w.justified]
        for f in raw:
            matched = False
            for w in live:
                if w.rule == f.rule and w.target_line == f.line:
                    w.used = True
                    matched = True
            (waived if matched else active).append(f)
        # Stale shard waivers are audited here (the linter's W2 skips them:
        # only this engine knows which shard findings exist).
        for w in live:
            if not w.used and (w.rule in rule_ids or rules == ALL_SHARD_RULES):
                active.append(
                    Finding(
                        path=mod.relpath,
                        line=w.comment_line,
                        rule="unused-waiver",
                        message=(
                            f"waiver for `{w.rule}` matches no shard finding "
                            f"(target line {w.target_line})"
                        ),
                        fix_hint="delete the waiver comment "
                        "(or move it next to the code it excuses)",
                    )
                )

    active.sort()
    waived.sort()
    if baseline is None:
        base = Baseline([])
    elif isinstance(baseline, Baseline):
        base = baseline
    else:
        base = Baseline.load(baseline)
    final, baselined, stale = base.partition(active)
    return ShardReport(
        root=root,
        files=len(files),
        functions=len(index.functions),
        roles=role_map,
        rules=rules,
        findings=final,
        waived=waived,
        baselined=baselined,
        stale_baseline=stale,
    )
