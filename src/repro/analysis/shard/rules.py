"""Shard safety rules S1–S5.

Each rule checks one clause of the sharded engine's safety contract
(:mod:`repro.sim.shard` module docstring) against the inferred process
roles (:mod:`repro.analysis.shard.roles`).  Like the lint rules these are
*syntactic* heuristics tuned so the contract cannot be broken silently;
band membership of individual ids is a runtime property and is covered by
the ``REPRO_SHARD_SANITIZE=1`` asserts instead, not by S1.

Rules receive a :class:`ShardContext` (index + roles) and walk whole
functions, so one rule can correlate acquisitions and releases across the
methods of a class (S4).  Findings reuse the linter's
:class:`~repro.analysis.lint.findings.Finding` value object, the
``# repro: allow(shard-…): why`` waiver syntax, and the shared baseline
format.
"""

from __future__ import annotations

import abc
import ast
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.analysis.flow.callgraph import FunctionInfo, ProjectIndex
from repro.analysis.lint.engine import SourceModule
from repro.analysis.lint.findings import Finding
from repro.analysis.shard.roles import RoleMap

__all__ = [
    "ALL_SHARD_RULES",
    "ShardContext",
    "ShardRule",
    "BandOwnershipRule",
    "BoundaryTypeRule",
    "MasterStateRule",
    "SegmentLifecycleRule",
    "ForkHygieneRule",
    "resolve_shard_rules",
    "shard_rule_table",
]


@dataclass
class ShardContext:
    """Everything a shard rule can see: the call graph and the role map."""

    index: ProjectIndex
    roles: RoleMap

    def functions(self) -> Iterable[FunctionInfo]:
        for qname in sorted(self.index.functions):
            yield self.index.functions[qname]

    def worker_functions(self) -> Iterable[FunctionInfo]:
        """Functions that run *exclusively* in worker processes."""
        for info in self.functions():
            if self.roles.worker_only(info.qname):
                yield info


class ShardRule(abc.ABC):
    """One shard safety check; mirrors the lint ``Rule`` surface."""

    id: str = ""
    code: str = ""
    description: str = ""
    fix_hint: str = ""
    severity: str = "error"

    @abc.abstractmethod
    def check(self, ctx: ShardContext) -> Iterator[Finding]:
        """Yield findings over the whole project."""

    def finding(
        self,
        mod: SourceModule,
        where: ast.AST | int,
        message: str,
        fix_hint: str | None = None,
    ) -> Finding:
        line = where if isinstance(where, int) else getattr(where, "lineno", 0)
        return Finding(
            path=mod.relpath,
            line=line,
            rule=self.id,
            message=message,
            severity=self.severity,
            fix_hint=self.fix_hint if fix_hint is None else fix_hint,
        )


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------


def _receiver_text(expr: ast.expr) -> str | None:
    """The trailing identifier of a receiver (``store``, ``self._store``)."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _is_storeish(expr: ast.expr) -> bool:
    text = _receiver_text(expr)
    return text is not None and "store" in text.lower()


def _is_self_attr(expr: ast.expr) -> ast.Attribute | None:
    """``self.<attr>`` / ``cls.<attr>`` as an Attribute node, else None."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id in ("self", "cls")
    ):
        return expr
    return None


def _contains_name(expr: ast.expr, name: str) -> bool:
    return any(
        isinstance(n, ast.Name) and n.id == name for n in ast.walk(expr)
    )


def _except_handler_nodes(fn: ast.AST) -> set[int]:
    """``id()`` of every AST node inside an ``except`` handler body."""
    inside: set[int] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.ExceptHandler):
            for sub in ast.walk(node):
                inside.add(id(sub))
    return inside


# ----------------------------------------------------------------------
# S1 — NodeStore band ownership
# ----------------------------------------------------------------------

#: NodeStore methods only the master (the single slot allocator) may call.
STORE_OWNER_ONLY = ("ensure", "retire", "init_fixed_views")

#: The shared struct-of-arrays columns workers publish *through the API*,
#: never by direct column writes (a direct write bypasses the slot check).
STORE_COLUMNS = ("phase", "epoch", "pos")


class BandOwnershipRule(ShardRule):
    """S1 — workers publish through the NodeStore API, never allocate."""

    id = "shard-band-ownership"
    code = "S1"
    description = (
        "worker-role code must not call owner-only NodeStore APIs "
        "(ensure/retire/init_fixed_views) or write store columns "
        "(.phase/.epoch/.pos) directly; the master is the single slot "
        "allocator and workers publish via adopt()/publish_state()"
    )
    fix_hint = (
        "route the write through store.adopt()/publish_state() with a "
        "master-allocated slot, or move the call to the master side"
    )

    def check(self, ctx: ShardContext) -> Iterator[Finding]:
        for info in ctx.worker_functions():
            mod = info.module
            for node in ast.walk(info.node):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in STORE_OWNER_ONLY
                    and _is_storeish(node.func.value)
                ):
                    yield self.finding(
                        mod,
                        node,
                        f"worker-role `{info.qname}` calls owner-only NodeStore "
                        f"API `.{node.func.attr}()` — only the master allocates "
                        "or retires slots",
                    )
                elif isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        col = self._column_write(target)
                        if col is not None:
                            yield self.finding(
                                mod,
                                node,
                                f"worker-role `{info.qname}` writes NodeStore "
                                f"column `.{col}` directly — publish through "
                                "the store API so slot ownership is checked",
                            )

    @staticmethod
    def _column_write(target: ast.expr) -> str | None:
        """``store.phase[...] = x`` or ``store.phase = x`` column name."""
        if isinstance(target, ast.Subscript):
            target = target.value
        if (
            isinstance(target, ast.Attribute)
            and target.attr in STORE_COLUMNS
            and _is_storeish(target.value)
        ):
            return target.attr
        return None


# ----------------------------------------------------------------------
# S2 — boundary codec types
# ----------------------------------------------------------------------

#: Constructors whose results must never cross the pipe/frame boundary.
_BANNED_CTORS = {
    "threading.Lock": "a lock",
    "threading.RLock": "a lock",
    "threading.Condition": "a condition variable",
    "threading.Event": "an event",
    "threading.Semaphore": "a semaphore",
    "multiprocessing.Lock": "a lock",
    "multiprocessing.RLock": "a lock",
    "multiprocessing.Queue": "a queue",
}


class BoundaryTypeRule(ShardRule):
    """S2 — only codec-approved values reach pipe/frame-encode sinks."""

    id = "shard-boundary-types"
    code = "S2"
    description = (
        "values reaching pipe send / frame-encode sinks (conn.send_bytes, "
        "_dumps/pickle.dumps, FrameEncoder.encode) must be in the approved "
        "codec set — no closures, lambdas, generators, locks, open files, "
        "or raw memoryviews/shared-buffer exports"
    )
    fix_hint = (
        "ship plain data (tuples/dicts/arrays/messages) across the "
        "boundary; reconstruct callables and views on the far side"
    )

    def check(self, ctx: ShardContext) -> Iterator[Finding]:
        for info in ctx.functions():
            mod = info.module
            banned_names = self._banned_bindings(info.node)
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                if not self._is_sink(mod, node):
                    continue
                args = list(node.args) + [kw.value for kw in node.keywords]
                for arg in args:
                    label = self._banned_expr(mod, arg, banned_names)
                    if label is not None:
                        yield self.finding(
                            mod,
                            arg,
                            f"`{info.qname}` sends {label} to a pipe/frame "
                            "boundary sink — not in the approved codec set",
                        )

    @staticmethod
    def _is_sink(mod: SourceModule, node: ast.Call) -> bool:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "_dumps":
                return True
            dotted = mod.import_map.get(func.id)
            return dotted == "pickle.dumps"
        if isinstance(func, ast.Attribute):
            if func.attr == "send_bytes":
                return True
            if func.attr == "dumps" and mod.resolve(func) == "pickle.dumps":
                return True
            if func.attr == "encode":
                # FrameEncoder-style receivers only (`enc`, `up_enc`,
                # `self._down_enc`); plain `text.encode("utf-8")` is not a
                # boundary sink.
                recv = _receiver_text(func.value)
                return recv is not None and "enc" in recv.lower()
        return False

    @staticmethod
    def _banned_bindings(fn: ast.AST) -> dict[str, str]:
        """Local names bound to values that may not cross the boundary."""
        banned: dict[str, str] = {}
        for node in ast.walk(fn):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is not fn:
                    banned[node.name] = "a nested function (closure)"
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    label = BoundaryTypeRule._value_label(node.value)
                    if label is not None:
                        banned[target.id] = label
        return banned

    @staticmethod
    def _value_label(value: ast.expr) -> str | None:
        if isinstance(value, ast.Lambda):
            return "a lambda"
        if isinstance(value, ast.GeneratorExp):
            return "a generator expression"
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            if value.func.id == "memoryview":
                return "a raw memoryview"
            if value.func.id == "open":
                return "an open file handle"
        if isinstance(value, ast.Attribute) and value.attr == "buf":
            return "a raw shared-memory buffer view"
        return None

    @staticmethod
    def _banned_expr(
        mod: SourceModule, expr: ast.expr, banned_names: dict[str, str]
    ) -> str | None:
        direct = BoundaryTypeRule._value_label(expr)
        if direct is not None:
            return direct
        if isinstance(expr, ast.Name):
            return banned_names.get(expr.id)
        if isinstance(expr, ast.Call):
            dotted = mod.resolve(expr.func)
            if dotted in _BANNED_CTORS:
                return _BANNED_CTORS[dotted]
        return None


# ----------------------------------------------------------------------
# S3 — master-only state in worker code
# ----------------------------------------------------------------------

#: Engine/runner attributes that exist only on the master side of the
#: fork: the adversary, health monitoring, tracing/metrics, the network
#: (workers get a local send log), lifecycle bookkeeping, and the msg-id
#: re-canonicalisation registry.
MASTER_ONLY_ATTRS = frozenset(
    {
        "adversary",
        "health",
        "trace",
        "metrics",
        "faults",
        "network",
        "lifecycle",
        "_canon",
    }
)

#: Dotted prefixes of master-only services a worker must never construct.
_MASTER_ONLY_CTOR_PREFIXES = ("repro.adversary.", "repro.faults.health")


class MasterStateRule(ShardRule):
    """S3 — worker-role code never touches master-only state."""

    id = "shard-master-state"
    code = "S3"
    description = (
        "worker-role code must not touch master-only state (adversary, "
        "health monitor, trace/metrics, faults, the live network, "
        "lifecycle, the msg-id registry): after the fork those objects "
        "only advance in the master, so a worker read is stale and a "
        "worker write is silently lost"
    )
    fix_hint = (
        "ship the needed value through the round control message (or a "
        "fork-time snapshot), or move the access to the master side"
    )

    def check(self, ctx: ShardContext) -> Iterator[Finding]:
        for info in ctx.worker_functions():
            mod = info.module
            for node in ast.walk(info.node):
                if (
                    isinstance(node, ast.Attribute)
                    and node.attr in MASTER_ONLY_ATTRS
                ):
                    yield self.finding(
                        mod,
                        node,
                        f"worker-role `{info.qname}` touches master-only "
                        f"state `.{node.attr}` — stale after the fork",
                    )
                elif isinstance(node, ast.Call):
                    dotted = mod.resolve(node.func)
                    if dotted is not None and any(
                        dotted.startswith(p) for p in _MASTER_ONLY_CTOR_PREFIXES
                    ):
                        yield self.finding(
                            mod,
                            node,
                            f"worker-role `{info.qname}` constructs master-only "
                            f"service `{dotted}`",
                        )


# ----------------------------------------------------------------------
# S4 — segment lifecycle
# ----------------------------------------------------------------------

#: Calls that acquire a shared-memory segment (or a slab owning one).
_ACQUIRE_FUNCS = ("create_segment",)
_ACQUIRE_CLASSES = ("ShardSlab",)
#: Calls that release a segment passed as their first argument.
_RELEASE_FUNCS = ("destroy_segment", "close_segment")
#: Methods that release their receiver.
_RELEASE_METHODS = ("close", "unlink")


class SegmentLifecycleRule(ShardRule):
    """S4 — every acquired segment reaches a destroy/close."""

    id = "shard-segment-lifecycle"
    code = "S4"
    description = (
        "every create_segment()/ShardSlab acquisition must reach "
        "destroy_segment()/close() on all non-exceptional paths (a release "
        "only inside an except handler does not count), and no exported "
        "buffer view may escape a function that destroys its segment"
    )
    fix_hint = (
        "destroy the segment in a finally (or a close() method of the "
        "owning class), and copy buffer contents out before destroying"
    )

    def check(self, ctx: ShardContext) -> Iterator[Finding]:
        # (module, cls) -> attr -> (SourceModule, lineno) of the acquisition.
        class_acquired: dict[tuple, dict[str, tuple]] = {}
        # (module, cls) -> attrs released by some method of the class.
        class_released: dict[tuple, set[str]] = {}
        for info in ctx.functions():
            yield from self._check_function(
                info, class_acquired, class_released
            )
        for key, acquired in sorted(class_acquired.items()):
            released = class_released.get(key, set())
            for attr, (mod, lineno) in sorted(acquired.items()):
                if attr not in released:
                    yield self.finding(
                        mod,
                        lineno,
                        f"`self.{attr}` acquires a shared-memory segment but "
                        f"no method of `{key[1]}` destroys or closes it",
                    )

    def _check_function(
        self,
        info: FunctionInfo,
        class_acquired: dict[tuple, dict[str, tuple]],
        class_released: dict[tuple, set[str]],
    ) -> Iterator[Finding]:
        mod = info.module
        fn = info.node
        in_handler = _except_handler_nodes(fn)
        cls_key = (info.module.module, info.cls)
        local_acquired: dict[str, int] = {}  # name -> lineno
        local_released: set[str] = set()
        local_destroyed: set[str] = set()  # destroy_segment specifically
        escaped: set[str] = set()
        aliases: dict[str, str] = {}  # local name -> self attr it aliases
        view_of: dict[str, str] = {}  # local name -> segment its .buf it views

        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
                acquired = self._is_acquisition(mod, value)
                if acquired:
                    if isinstance(target, ast.Name):
                        local_acquired.setdefault(target.id, node.lineno)
                    else:
                        attr = _is_self_attr(target)
                        if attr is not None:
                            class_acquired.setdefault(cls_key, {}).setdefault(
                                attr.attr, (mod, node.lineno)
                            )
                elif isinstance(target, ast.Name):
                    attr = _is_self_attr(value)
                    if attr is not None:
                        aliases[target.id] = attr.attr
                    seg = self._buf_view_source(value)
                    if seg is not None:
                        view_of[target.id] = seg
            elif isinstance(node, ast.Call):
                released = self._released_by(node)
                if released is None:
                    # A segment handed to any other call escapes this
                    # function's ownership (e.g. Process args, helpers).
                    for arg in node.args:
                        if isinstance(arg, ast.Name):
                            escaped.add(arg.id)
                        for sub in ast.walk(arg):
                            if isinstance(sub, ast.Name):
                                escaped.add(sub.id)
                    continue
                kind, target = released
                if id(node) in in_handler:
                    continue  # except-handler-only release does not count
                if isinstance(target, ast.Name):
                    name = target.id
                    local_released.add(name)
                    if kind == "destroy":
                        local_destroyed.add(name)
                    if name in aliases:
                        class_released.setdefault(cls_key, set()).add(
                            aliases[name]
                        )
                else:
                    attr = _is_self_attr(target)
                    if attr is not None:
                        class_released.setdefault(cls_key, set()).add(attr.attr)
            elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = node.value
                if value is not None:
                    for sub in ast.walk(value):
                        if isinstance(sub, ast.Name):
                            escaped.add(sub.id)

        for name, lineno in sorted(local_acquired.items()):
            if name not in local_released and name not in escaped:
                yield self.finding(
                    mod,
                    lineno,
                    f"segment `{name}` acquired in `{info.qname}` never "
                    "reaches destroy_segment()/close() on a non-exceptional "
                    "path",
                )

        # Buffer-escape: a function that destroys a segment must not return
        # a view over that segment's buffer.
        for node in ast.walk(fn):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            for sub in ast.walk(node.value):
                seg = self._buf_view_source(sub)
                if seg is None and isinstance(sub, ast.Name):
                    seg = view_of.get(sub.id)
                if seg is not None and seg in local_destroyed:
                    yield self.finding(
                        mod,
                        node,
                        f"`{info.qname}` returns a buffer view over segment "
                        f"`{seg}` that it destroys — the mapping is gone "
                        "before the caller reads it",
                    )

    @staticmethod
    def _is_acquisition(mod: SourceModule, value: ast.expr) -> bool:
        if not isinstance(value, ast.Call):
            return False
        func = value.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
        if name in _ACQUIRE_FUNCS or name in _ACQUIRE_CLASSES:
            return True
        if name == "SharedMemory":
            return any(
                kw.arg == "create"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in value.keywords
            )
        return False

    @staticmethod
    def _released_by(node: ast.Call) -> tuple[str, ast.expr] | None:
        """``("destroy"|"close", released_expr)`` if this call releases."""
        func = node.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
        if name in _RELEASE_FUNCS and node.args:
            kind = "destroy" if name == "destroy_segment" else "close"
            return kind, node.args[0]
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _RELEASE_METHODS
            and not node.args
        ):
            return "close", func.value
        return None

    @staticmethod
    def _buf_view_source(expr: ast.expr) -> str | None:
        """The segment name behind ``<name>.buf`` (or ``None``)."""
        if (
            isinstance(expr, ast.Attribute)
            and expr.attr == "buf"
            and isinstance(expr.value, ast.Name)
        ):
            return expr.value.id
        return None


# ----------------------------------------------------------------------
# S5 — fork hygiene
# ----------------------------------------------------------------------

#: Methods that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "append",
        "add",
        "update",
        "pop",
        "popitem",
        "clear",
        "extend",
        "remove",
        "discard",
        "insert",
        "setdefault",
        "appendleft",
    }
)

#: RNG acquisitions that are nondeterministic across forked processes.
_NONDET_RNG = ("os.urandom",)
_NONDET_RNG_PREFIXES = ("secrets.",)


class ForkHygieneRule(ShardRule):
    """S5 — no module-global mutation or un-reseeded RNG in workers."""

    id = "shard-fork-hygiene"
    code = "S5"
    description = (
        "worker-role code must not mutate module globals (each fork "
        "mutates its private copy — state silently diverges) or draw from "
        "un-reseeded / OS-entropy RNGs (default_rng() without a seed, "
        "os.urandom, secrets)"
    )
    fix_hint = (
        "keep worker state in function locals or objects shipped through "
        "the control message; draw randomness from the per-node "
        "RngService streams forked with the engine snapshot"
    )

    def check(self, ctx: ShardContext) -> Iterator[Finding]:
        module_globals: dict[str, set[str]] = {}
        for info in ctx.worker_functions():
            mod = info.module
            if mod.module not in module_globals:
                module_globals[mod.module] = self._top_level_names(mod)
            globals_here = module_globals[mod.module]
            for node in ast.walk(info.node):
                if isinstance(node, ast.Global):
                    yield self.finding(
                        mod,
                        node,
                        f"worker-role `{info.qname}` rebinds module "
                        f"global(s) {', '.join(node.names)} — each fork "
                        "mutates a private copy",
                    )
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATORS
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in globals_here
                ):
                    yield self.finding(
                        mod,
                        node,
                        f"worker-role `{info.qname}` mutates module global "
                        f"`{node.func.value.id}` in place",
                    )
                elif isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        if (
                            isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Name)
                            and target.value.id in globals_here
                        ):
                            yield self.finding(
                                mod,
                                node,
                                f"worker-role `{info.qname}` writes into "
                                f"module global `{target.value.id}`",
                            )
                elif isinstance(node, ast.Call):
                    yield from self._check_rng(info, mod, node)

    def _check_rng(
        self, info: FunctionInfo, mod: SourceModule, node: ast.Call
    ) -> Iterator[Finding]:
        dotted = mod.resolve(node.func)
        if dotted is None and isinstance(node.func, ast.Name):
            dotted = mod.import_map.get(node.func.id, node.func.id)
        if dotted is None:
            return
        if dotted in _NONDET_RNG or any(
            dotted.startswith(p) for p in _NONDET_RNG_PREFIXES
        ):
            yield self.finding(
                mod,
                node,
                f"worker-role `{info.qname}` draws OS entropy via "
                f"`{dotted}` — forked runs diverge",
            )
        elif (
            dotted.endswith("default_rng")
            and not node.args
            and not node.keywords
        ):
            yield self.finding(
                mod,
                node,
                f"worker-role `{info.qname}` creates an unseeded "
                "default_rng() — each fork gets fresh OS entropy",
            )

    @staticmethod
    def _top_level_names(mod: SourceModule) -> set[str]:
        names: set[str] = set()
        for node in mod.tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                names.add(node.target.id)
        return names


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

ALL_SHARD_RULES: tuple[ShardRule, ...] = (
    BandOwnershipRule(),
    BoundaryTypeRule(),
    MasterStateRule(),
    SegmentLifecycleRule(),
    ForkHygieneRule(),
)


def resolve_shard_rules(spec: str | Iterable[str] | None) -> tuple[ShardRule, ...]:
    """Rules selected by a comma/space separated list of ids or codes."""
    from repro.analysis.lint.engine import LintError

    if spec is None:
        return ALL_SHARD_RULES
    if isinstance(spec, str):
        wanted = [s for chunk in spec.split(",") for s in chunk.split()]
    else:
        wanted = list(spec)
    wanted = [w.strip().lower() for w in wanted if w.strip()]
    if not wanted:
        return ALL_SHARD_RULES
    by_key = {r.id: r for r in ALL_SHARD_RULES}
    by_key.update({r.code.lower(): r for r in ALL_SHARD_RULES})
    selected: list[ShardRule] = []
    for key in wanted:
        rule = by_key.get(key)
        if rule is None:
            known = ", ".join(f"{r.code}/{r.id}" for r in ALL_SHARD_RULES)
            raise LintError(f"unknown shard rule {key!r}; known rules: {known}")
        if rule not in selected:
            selected.append(rule)
    return tuple(selected)


def shard_rule_table() -> str:
    """Plain-text rule table for ``repro shard-check --list-rules``."""
    width = max(len(r.id) for r in ALL_SHARD_RULES)
    lines = []
    for rule in ALL_SHARD_RULES:
        lines.append(f"{rule.code:>4}  {rule.id:<{width}}  {rule.description}")
    return "\n".join(lines)
