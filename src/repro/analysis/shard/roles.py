"""Process-role inference over the project call graph.

The sharded engine (:mod:`repro.sim.shard`) is a forked multi-process
system: the master runs the adversary/receive/close phases, owns every
shared-memory segment, and splices worker send streams; each worker owns
one position band and runs only the compute phase.  Which *functions*
execute in which process is not written down anywhere — it is implied by
reachability from a handful of entry points.  This module makes that
implicit partition explicit:

* **worker seeds** — functions named like a worker body
  (:data:`WORKER_ENTRY_NAMES`, e.g. ``_worker_main``): they run inside a
  forked child from the first round command to the stop message;
* **master seeds** — every method of a coordinator class
  (:data:`MASTER_ENTRY_CLASSES`, e.g. ``ShardRunner``) plus the engine's
  round drivers (``Engine.run`` / ``Engine.run_round``): they only ever
  run in the parent.

Roles propagate along *resolved* call edges (the same resolution the flow
analysis uses, :class:`~repro.analysis.flow.callgraph.ProjectIndex`): a
function reachable only from worker seeds is **worker**-role, only from
master seeds **master**-role, from both **shared**.  Unresolvable calls
(arbitrary receivers, builtins, third-party code) deliberately stop
propagation — same tripwire semantics as the flow engine: what the graph
cannot see, the rules do not claim to check.

Passing a worker entry point as a ``Process`` *target* is a name load,
not a call, so worker seeds are never accidentally pulled into the
master's reach by the fork call site itself.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.flow.callgraph import ProjectIndex

__all__ = [
    "MASTER",
    "WORKER",
    "SHARED",
    "WORKER_ENTRY_NAMES",
    "MASTER_ENTRY_CLASSES",
    "MASTER_ENTRY_SUFFIXES",
    "RoleMap",
    "call_edges",
    "infer_roles",
]

#: Role constants (values appear in reports and test assertions).
MASTER = "master"
WORKER = "worker"
SHARED = "shared"

#: Bare function names treated as worker-process entry points.
WORKER_ENTRY_NAMES: tuple[str, ...] = ("_worker_main", "_worker_loop")

#: Classes whose every method is a master-process entry point.
MASTER_ENTRY_CLASSES: tuple[str, ...] = ("ShardRunner",)

#: Qualified-name suffixes that are master entry points wherever they live.
MASTER_ENTRY_SUFFIXES: tuple[str, ...] = (".Engine.run", ".Engine.run_round")


@dataclass
class RoleMap:
    """The inferred process role of every function reachable from a seed."""

    #: ``qname -> MASTER | WORKER | SHARED``; unreachable functions absent.
    roles: dict[str, str]
    worker_seeds: tuple[str, ...]
    master_seeds: tuple[str, ...]

    def role_of(self, qname: str) -> str | None:
        return self.roles.get(qname)

    def worker_only(self, qname: str) -> bool:
        """Whether ``qname`` runs *exclusively* in worker processes."""
        return self.roles.get(qname) == WORKER

    def counts(self) -> dict[str, int]:
        out = {MASTER: 0, WORKER: 0, SHARED: 0}
        for role in self.roles.values():
            out[role] += 1
        return out


def call_edges(index: ProjectIndex) -> dict[str, set[str]]:
    """Resolved caller -> callee edges for every indexed function.

    Calls inside nested functions/lambdas are attributed to the enclosing
    indexed function — they execute (if at all) in the same process.
    """
    edges: dict[str, set[str]] = {}
    for qname, info in index.functions.items():
        out: set[str] = set()
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            resolved = index.resolve_call(info.module, info.cls, node.func)
            if resolved is not None:
                out.add(resolved[0].qname)
        edges[qname] = out
    return edges


def _reach(seeds: list[str], edges: dict[str, set[str]]) -> set[str]:
    seen = set(seeds)
    frontier = list(seeds)
    while frontier:
        qname = frontier.pop()
        for callee in edges.get(qname, ()):
            if callee not in seen:
                seen.add(callee)
                frontier.append(callee)
    return seen


def infer_roles(index: ProjectIndex) -> RoleMap:
    """Seed the entry points and propagate roles over the call graph."""
    worker_seeds = sorted(
        qname
        for qname, info in index.functions.items()
        if info.node.name in WORKER_ENTRY_NAMES
    )
    master_seeds = sorted(
        qname
        for qname, info in index.functions.items()
        if info.cls in MASTER_ENTRY_CLASSES
        or any(qname.endswith(suffix) for suffix in MASTER_ENTRY_SUFFIXES)
    )
    edges = call_edges(index)
    from_worker = _reach(worker_seeds, edges)
    from_master = _reach(master_seeds, edges)
    roles: dict[str, str] = {}
    for qname in from_worker | from_master:
        if qname not in index.functions:  # pragma: no cover - defensive
            continue
        in_w = qname in from_worker
        in_m = qname in from_master
        roles[qname] = SHARED if (in_w and in_m) else (WORKER if in_w else MASTER)
    return RoleMap(
        roles=roles,
        worker_seeds=tuple(worker_seeds),
        master_seeds=tuple(master_seeds),
    )
