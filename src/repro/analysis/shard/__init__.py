"""``repro.analysis.shard`` — process-role & shared-memory ownership analyzer.

The third static-analysis engine, alongside the linter
(:mod:`repro.analysis.lint`) and the flow analysis
(:mod:`repro.analysis.flow`).  Where those guard determinism and the
lateness wall, this one guards the *multi-process* safety contract of the
sharded round engine (:mod:`repro.sim.shard`):

1. infer a **process role** — master-only / worker-only / shared — for
   every function, by seeding known entry points (``_worker_main``-style
   worker bodies; ``ShardRunner`` methods and ``Engine.run``/
   ``Engine.run_round`` on the master side) and propagating over the flow
   call graph (:class:`~repro.analysis.flow.callgraph.ProjectIndex`);
2. check declarative rules against those roles:

   ====  ========================  ==================================================
   S1    shard-band-ownership      workers never allocate NodeStore slots or write
                                   columns directly
   S2    shard-boundary-types      only codec-approved values reach pipe/frame sinks
   S3    shard-master-state        worker code never touches master-only state
   S4    shard-segment-lifecycle   every segment acquisition reaches destroy/close
   S5    shard-fork-hygiene        no module-global mutation or un-reseeded RNG in
                                   worker code
   ====  ========================  ==================================================

Run it as ``repro shard-check`` (see ``docs/ANALYSIS.md``), or from code::

    from repro.analysis.shard import run_shard_check
    report = run_shard_check(root=repo_root)  # defaults: src/repro, all rules
    assert report.ok, report.format_text()

Findings share the linter's waiver syntax (``# repro: allow(shard-…): …``)
and baseline format (``shard-baseline.json``).
"""

from repro.analysis.shard.engine import (
    DEFAULT_SHARD_BASELINE_NAME,
    ShardReport,
    run_shard_check,
)
from repro.analysis.shard.roles import (
    MASTER,
    MASTER_ENTRY_CLASSES,
    MASTER_ENTRY_SUFFIXES,
    SHARED,
    WORKER,
    WORKER_ENTRY_NAMES,
    RoleMap,
    call_edges,
    infer_roles,
)
from repro.analysis.shard.rules import (
    ALL_SHARD_RULES,
    BandOwnershipRule,
    BoundaryTypeRule,
    ForkHygieneRule,
    MasterStateRule,
    SegmentLifecycleRule,
    ShardContext,
    ShardRule,
    resolve_shard_rules,
    shard_rule_table,
)

__all__ = [
    "ALL_SHARD_RULES",
    "BandOwnershipRule",
    "BoundaryTypeRule",
    "DEFAULT_SHARD_BASELINE_NAME",
    "ForkHygieneRule",
    "MASTER",
    "MASTER_ENTRY_CLASSES",
    "MASTER_ENTRY_SUFFIXES",
    "MasterStateRule",
    "RoleMap",
    "SHARED",
    "SegmentLifecycleRule",
    "ShardContext",
    "ShardReport",
    "ShardRule",
    "WORKER",
    "WORKER_ENTRY_NAMES",
    "call_edges",
    "infer_roles",
    "resolve_shard_rules",
    "run_shard_check",
    "shard_rule_table",
]
