"""Machinery shared by all four analysis engines.

``repro lint``, ``repro flow``, ``repro shard-check`` and
``repro proto-check`` are siblings on purpose: one
:class:`~repro.analysis.lint.findings.Finding` value object, one
``(path, rule, message)``-multiset baseline format, one
``# repro: allow(<rule>): why`` waiver syntax, and one SARIF emitter.
Historically each engine carried its own copy of the surrounding
boilerplate — target collection, parse-error findings, prefix-waiver
matching with the staleness audit, baseline application, and an
argparse block in :mod:`repro.cli`.  This module is the single home for
all of it:

* :func:`resolve_targets` / :func:`parse_modules` — the shared
  parse phase (through one :class:`SourceCache`, so the umbrella
  ``repro check`` parses every file exactly once for all engines);
* :func:`match_prefix_waivers` — waiver matching + staleness audit for
  the prefix-owned engines (``flow-*`` / ``shard-*`` / ``protocol-*``);
* :func:`apply_baseline` — load/partition against a baseline file;
* :func:`add_engine_arguments` / :func:`run_engine_command` — one
  argparse builder and one command driver, so
  ``--baseline/--no-baseline/--update-baseline/--rules/--paths/--format``
  behave identically across all four subcommands.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.analysis.lint.baseline import Baseline, write_baseline
from repro.analysis.lint.engine import LintError, SourceModule
from repro.analysis.lint.findings import Finding
from repro.analysis.source_cache import SourceCache, collect_py_files

__all__ = [
    "add_engine_arguments",
    "apply_baseline",
    "match_prefix_waivers",
    "parse_modules",
    "resolve_targets",
    "run_engine_command",
]


# ----------------------------------------------------------------------
# Engine-side helpers (the parse / waiver / baseline phases)
# ----------------------------------------------------------------------


def resolve_targets(
    paths: Iterable[Path | str] | None,
    root: Path | str | None,
) -> tuple[Path, list[Path]]:
    """Normalise the ``(paths, root)`` arguments every engine accepts.

    Returns the resolved root and the file list; raises
    :class:`LintError` for missing paths (all engines report that the
    same way).
    """
    root = Path(root) if root is not None else Path.cwd()
    root = root.resolve()
    targets = [Path(p) for p in paths] if paths is not None else [root / "src" / "repro"]
    try:
        files = collect_py_files(targets)
    except FileNotFoundError as exc:
        raise LintError(str(exc)) from None
    return root, files


def parse_modules(
    files: Sequence[Path],
    cache: SourceCache,
    root: Path,
) -> tuple[list[SourceModule], list[Finding]]:
    """Parse every file through the shared cache.

    Syntax errors become ``parse-error`` findings instead of aborting, so
    a broken file fails the gate with a pointable location.
    """
    modules: list[SourceModule] = []
    findings: list[Finding] = []
    for path in files:
        try:
            modules.append(cache.module(path))
        except SyntaxError as exc:
            try:
                rel = path.relative_to(root).as_posix()
            except ValueError:
                rel = path.as_posix()
            findings.append(
                Finding(
                    path=rel,
                    line=exc.lineno or 0,
                    rule="parse-error",
                    message=f"file does not parse: {exc.msg}",
                )
            )
    return modules, findings


def match_prefix_waivers(
    modules: Iterable[SourceModule],
    raw_by_module: dict[str, list[Finding]],
    *,
    prefix: str,
    rule_ids: set[str],
    audit_all: bool,
    engine: str,
    active: list[Finding],
) -> list[Finding]:
    """Match prefix-owned waivers and audit stale ones.

    ``raw_by_module`` maps relpath -> raw findings for that module; the
    matched ones are returned as the waived list, the rest (plus stale-
    waiver findings) are appended to ``active``.  ``audit_all`` is True
    when the full rule set ran, in which case *any* unused waiver of the
    prefix is provably stale; otherwise only waivers for rules in
    ``rule_ids`` are audited (a deselected rule cannot prove its waivers
    stale).  The linter's W2 skips these prefixes — only the owning
    engine knows which of its findings exist.
    """
    waived: list[Finding] = []
    for mod in modules:
        raw = sorted(raw_by_module.get(mod.relpath, []))
        own = [w for w in mod.waivers if w.rule.startswith(prefix)]
        for w in own:
            w.used = False
        live = [w for w in own if w.justified]
        for f in raw:
            matched = False
            for w in live:
                if w.rule == f.rule and w.target_line == f.line:
                    w.used = True
                    matched = True
            (waived if matched else active).append(f)
        for w in live:
            if not w.used and (w.rule in rule_ids or audit_all):
                active.append(
                    Finding(
                        path=mod.relpath,
                        line=w.comment_line,
                        rule="unused-waiver",
                        message=(
                            f"waiver for `{w.rule}` matches no {engine} finding "
                            f"(target line {w.target_line})"
                        ),
                        fix_hint="delete the waiver comment "
                        "(or move it next to the code it excuses)",
                    )
                )
    return waived


def apply_baseline(
    active: list[Finding],
    waived: list[Finding],
    baseline: Path | str | Baseline | None,
) -> tuple[list[Finding], list[Finding], list[dict]]:
    """Sort both lists and partition ``active`` against the baseline."""
    active.sort()
    waived.sort()
    if baseline is None:
        base = Baseline([])
    elif isinstance(baseline, Baseline):
        base = baseline
    else:
        base = Baseline.load(baseline)
    return base.partition(active)


# ----------------------------------------------------------------------
# CLI-side helpers (one argparse builder, one command driver)
# ----------------------------------------------------------------------


def add_engine_arguments(
    parser: argparse.ArgumentParser,
    *,
    default_baseline_name: str,
    rules_flags: Sequence[str] = ("--rules",),
    rules_metavar: str = "R[,R...]",
    rules_help: str = "only run these rules (by id or code)",
    list_flags: Sequence[str] = ("--list-rules",),
    list_help: str = "print the rule table and exit",
) -> None:
    """The flag set every analysis engine shares, with one spelling.

    ``rules_flags``/``list_flags`` accept alias spellings (``repro flow``
    keeps ``--policies``/``--list-policies`` alongside the shared
    ``--rules``/``--list-rules``); all aliases land in the ``rules`` and
    ``list_rules`` destinations.
    """
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="output format",
    )
    parser.add_argument(
        *rules_flags,
        dest="rules",
        default=None,
        metavar=rules_metavar,
        help=rules_help,
    )
    parser.add_argument(
        "--paths",
        nargs="*",
        default=None,
        metavar="PATH",
        help="files/directories to analyse (default: src/repro)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help=f"baseline file (default: {default_baseline_name} at the repo root)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true", help="ignore the baseline file"
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        *list_flags,
        dest="list_rules",
        action="store_true",
        help=list_help,
    )


def run_engine_command(
    args: argparse.Namespace,
    *,
    name: str,
    tool_name: str,
    root: Path,
    default_baseline_name: str,
    resolve: Callable[[str | None], tuple],
    table: Callable[[], str],
    runner: Callable[..., object],
    rule_meta: Callable[[tuple], dict],
    errors: tuple[type[Exception], ...] = (LintError,),
    pre: Callable[[tuple, list[Path] | None], None] | None = None,
) -> int:
    """One driver for lint / flow / shard-check / proto-check.

    ``runner(paths, root=..., rules=..., baseline=...)`` runs the engine
    and returns its report (any object with ``ok``, ``findings``,
    ``to_dict()`` and ``format_text()``); ``resolve`` turns the ``--rules``
    string into the rule tuple, ``rule_meta`` maps it to SARIF metadata,
    and ``pre`` is an optional hook run after rule resolution (the
    linter's ``--fix``).  Exit codes: 0 clean, 1 findings, 2 usage error —
    identical across all four subcommands.
    """
    import json

    if args.list_rules:
        print(table())
        return 0
    paths = [Path(p) for p in args.paths] if args.paths else None
    baseline_path = (
        Path(args.baseline) if args.baseline else root / default_baseline_name
    )
    try:
        rules = resolve(args.rules)
        if pre is not None:
            pre(rules, paths)
        if args.update_baseline:
            report = runner(paths, root=root, rules=rules, baseline=None)
            write_baseline(baseline_path, report.findings)
            print(f"wrote {baseline_path} ({len(report.findings)} entries)")
            return 0
        report = runner(
            paths,
            root=root,
            rules=rules,
            baseline=None if args.no_baseline else baseline_path,
        )
    except errors as exc:
        print(f"{name}: {exc}")
        return 2
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    elif args.format == "sarif":
        from repro.analysis.sarif import sarif_report

        doc = sarif_report(
            report.findings,
            tool_name=tool_name,
            rule_meta=rule_meta(rules),
            root=root,
        )
        print(json.dumps(doc, indent=2))
    else:
        print(report.format_text())
    return 0 if report.ok else 1
