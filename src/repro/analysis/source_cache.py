"""Shared per-file parse cache for the static-analysis tools.

``repro lint`` and ``repro flow`` both need every file parsed into a
:class:`~repro.analysis.lint.engine.SourceModule` (source text, AST,
directives, import map).  Parsing dominates their runtime, so a single
:class:`SourceCache` instance can be threaded through both runs — each
file is then read and parsed exactly once, including the sibling
``__init__`` lookups the X1 rule performs (which used to re-parse files
the main lint loop had already parsed).

The cache is keyed by resolved path and also memoizes *failures*: a file
that does not parse raises the same :class:`SyntaxError` on every lookup
without re-reading it.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - cycle guard (lint.engine imports us)
    from repro.analysis.lint.engine import SourceModule

__all__ = ["SourceCache", "collect_py_files"]


def collect_py_files(paths: Iterable[Path | str]) -> list[Path]:
    """Every ``.py`` file under ``paths`` (files kept, dirs walked), deduped.

    Raises :class:`FileNotFoundError` for a path that does not exist — the
    callers (lint / flow) translate that into their own usage error.
    """
    files: list[Path] = []
    seen: set[Path] = set()
    for p in paths:
        p = Path(p)
        if not p.exists():
            raise FileNotFoundError(f"no such path: {p}")
        batch = [p] if p.is_file() else sorted(p.rglob("*.py"))
        for f in batch:
            if f.suffix == ".py":
                f = f.resolve()
                if f not in seen:
                    seen.add(f)
                    files.append(f)
    return files


class SourceCache:
    """Parse-once store of :class:`SourceModule` objects, keyed by path."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root).resolve()
        self._modules: dict[Path, "SourceModule | SyntaxError"] = {}
        #: Number of actual parses performed (for tests and profiling).
        self.parses = 0

    def module(self, path: Path | str) -> "SourceModule":
        """The parsed module for ``path``; raises the memoized SyntaxError."""
        from repro.analysis.lint.engine import SourceModule

        path = Path(path).resolve()
        cached = self._modules.get(path)
        if cached is None:
            self.parses += 1
            try:
                cached = SourceModule.from_path(path, self.root)
            except SyntaxError as exc:
                cached = exc
            self._modules[path] = cached
        if isinstance(cached, SyntaxError):
            raise cached
        return cached

    def try_module(self, path: Path | str) -> "SourceModule | None":
        """Like :meth:`module` but ``None`` for unreadable/unparsable files."""
        try:
            return self.module(path)
        except (OSError, SyntaxError):
            return None

    def invalidate(self, path: Path | str) -> None:
        """Drop one entry, e.g. after ``repro lint --fix`` rewrote the file."""
        self._modules.pop(Path(path).resolve(), None)
