"""``repro lint --fix``: delete stale waiver comments automatically.

The only finding the linter can fix mechanically without judgement is W2
(``unused-waiver``): the waiver comment matches no finding, so the safe
fix *is* the fix hint — delete the comment.  Everything else the linter
reports needs a human.

The edit is surgical and byte-exact outside the removed comments:

* a **standalone** waiver comment (nothing but whitespace before it on
  its line) is removed together with its line;
* a **trailing** waiver comment is stripped from the end of its line,
  along with the whitespace that separated it from the code;
* newline style, surrounding lines, and every other comment — including
  ``# repro: module(...)`` directives and ``flow-*`` waivers, which the
  linter does not audit — are untouched.

Comment positions come from :mod:`tokenize` (the same scan the waiver
parser uses), so waiver-shaped text inside string literals is never
edited.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.analysis.lint.engine import Rule, run_lint
from repro.analysis.lint.waivers import _WAIVER_RE, _comment_tokens
from repro.analysis.source_cache import SourceCache

__all__ = ["fix_unused_waivers"]


def _remove_waiver_comments(text: str, comment_lines: set[int]) -> tuple[str, int]:
    """``(new_text, removed)`` with the waiver comments on those lines gone."""
    raw = text.splitlines(keepends=True)
    plain = text.splitlines()
    positions = {
        line: col
        for line, col, tok in _comment_tokens(plain)
        if line in comment_lines and _WAIVER_RE.search(tok)
    }
    removed = 0
    for line in sorted(positions, reverse=True):
        col = positions[line]
        prefix = plain[line - 1][:col]
        if not prefix.strip():
            del raw[line - 1]
        else:
            ending = raw[line - 1][len(plain[line - 1]) :]
            raw[line - 1] = prefix.rstrip() + ending
        removed += 1
    return "".join(raw), removed


def fix_unused_waivers(
    paths: Iterable[Path | str] | None = None,
    *,
    root: Path | str | None = None,
    rules: Iterable[Rule] | None = None,
    cache: SourceCache | None = None,
) -> dict[str, int]:
    """Delete every stale waiver W2 reports; return ``{relpath: removed}``.

    Runs the linter without a baseline first (a baselined W2 finding is
    still a stale comment), rewrites each flagged file, and invalidates
    the rewritten files in ``cache`` so later runs re-parse them.
    """
    report = run_lint(paths, root=root, rules=rules, baseline=None, cache=cache)
    by_path: dict[str, set[int]] = {}
    for f in report.findings:
        if f.rule == "unused-waiver":
            by_path.setdefault(f.path, set()).add(f.line)

    fixed: dict[str, int] = {}
    for relpath, lines in sorted(by_path.items()):
        path = report.root / relpath
        text = path.read_text()
        new_text, removed = _remove_waiver_comments(text, lines)
        if removed and new_text != text:
            path.write_text(new_text)
            if cache is not None:
                cache.invalidate(path)
            fixed[relpath] = removed
    return fixed
