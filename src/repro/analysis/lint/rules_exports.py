"""Public-API consistency rules (family X).

``__all__`` drift is how a package's advertised surface silently decays: a
submodule grows a new public name, the package ``__init__`` keeps
re-exporting yesterday's list, and downstream code starts importing from
deep paths the next refactor breaks.  :class:`AllDriftRule` checks every
package ``__init__.py`` against the child *modules* it re-exports from
(child *packages* are exempt — partial re-export across package levels is
a legitimate API choice).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.engine import LintContext, Rule, SourceModule
from repro.analysis.lint.findings import Finding

__all__ = ["AllDriftRule"]


def _literal_all(tree: ast.Module) -> list[str] | None:
    for node in tree.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
        ):
            if isinstance(node.value, (ast.List, ast.Tuple)) and all(
                isinstance(e, ast.Constant) and isinstance(e.value, str)
                for e in node.value.elts
            ):
                return [e.value for e in node.value.elts]
    return None


def _bound_names(tree: ast.Module) -> set[str]:
    """Top-level names an ``__init__`` binds (imports, defs, assignments)."""
    bound: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                bound.add(alias.asname or alias.name)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            bound.add(node.target.id)
    return bound


class AllDriftRule(Rule):
    """X1 — package ``__init__`` re-exports stay in sync with child ``__all__``."""

    id = "all-drift"
    code = "X1"
    description = (
        "a package __init__ that re-exports from a child module must import only "
        "names the child declares in __all__, re-export *all* of them, list every "
        "one in its own __all__, and bind everything its __all__ names"
    )
    fix_hint = (
        "sync the __init__ import list and __all__ with the child module's "
        "__all__ (or stop importing from that child entirely)"
    )

    def applies_to(self, mod: SourceModule) -> bool:
        return mod.is_init and mod.module.startswith("repro")

    def check(self, mod: SourceModule, ctx: LintContext) -> Iterator[Finding]:
        pkg_all = _literal_all(mod.tree)
        bound = _bound_names(mod.tree)
        child_imports: dict[str, tuple[ast.ImportFrom, list[str]]] = {}
        for node in mod.tree.body:
            if not isinstance(node, ast.ImportFrom):
                continue
            origin = mod.resolve_import_from(node)
            prefix = mod.module + "."
            if not origin.startswith(prefix):
                continue
            child = origin[len(prefix) :]
            if "." in child or not child:
                continue  # grandchild or self import: out of scope
            if not (mod.path.parent / f"{child}.py").exists():
                continue  # child package (directory), exempt by design
            names = [alias.asname or alias.name for alias in node.names]
            if child in child_imports:
                child_imports[child][1].extend(names)
            else:
                child_imports[child] = (node, names)

        if child_imports and pkg_all is None:
            first = next(iter(child_imports.values()))[0]
            yield self.finding(
                mod, first, "package __init__ re-exports child modules but has no __all__"
            )

        for child, (node, names) in sorted(child_imports.items()):
            child_all = ctx.module_exports(mod.path.parent / f"{child}.py")
            if child_all is not None:
                for name in names:
                    if name not in child_all:
                        yield self.finding(
                            mod,
                            node,
                            f"imports `{name}` from `{child}`, which does not "
                            "declare it in __all__",
                        )
                for name in child_all:
                    if name not in names:
                        yield self.finding(
                            mod,
                            node,
                            f"`{child}.__all__` declares `{name}`, which is not "
                            "re-exported here",
                        )
            for name in names:
                if pkg_all is not None and name not in pkg_all:
                    yield self.finding(
                        mod,
                        node,
                        f"re-exports `{name}` from `{child}` but omits it from __all__",
                    )

        for name in pkg_all or []:
            if name not in bound:
                yield self.finding(
                    mod,
                    1,
                    f"__all__ names `{name}`, which is not defined or imported "
                    "in this module",
                )
