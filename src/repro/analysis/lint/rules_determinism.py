"""Determinism rules (family D).

The perf trajectory of this repo is only trustworthy because a run is a
pure function of its seed: the golden-fingerprint tests compare digests of
whole simulations across refactors.  These rules catch, *at lint time*, the
constructions that historically break that property — global RNG state,
wall clocks, hash-order iteration, ``id()``-derived keys, and environment
reads — before a simulation ever runs.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.engine import LintContext, Rule, SourceModule
from repro.analysis.lint.findings import Finding

__all__ = [
    "FINGERPRINT_PACKAGES",
    "GlobalRandomRule",
    "WallClockRule",
    "UnorderedIterationRule",
    "IdOrderingRule",
    "EnvReadRule",
]

#: Packages whose execution feeds the simulation fingerprint: every message,
#: every RNG draw, and every iteration order in these packages is part of
#: the bit-for-bit contract.
FINGERPRINT_PACKAGES = (
    "repro.sim",
    # Matching is by dotted prefix, so repro.sim covers every sim submodule
    # — including repro.sim.shard, whose forked workers replay the compute
    # phase and must satisfy the same determinism contract as the engine.
    "repro.sim.shard",
    "repro.core",
    "repro.overlay",
    "repro.routing",
    "repro.adversary",
    "repro.faults",
    "repro.scenarios",
    # The frame codec and segment registry under the zero-copy exchange:
    # encode/decode order and memo behaviour shape the bytes every sharded
    # round replays, so arena code answers to the same contract.
    "repro.util.arena",
)

#: ``numpy.random`` attributes that touch the *global* generator (the
#: explicitly-seeded object API — ``default_rng``/``Generator``/
#: ``SeedSequence``/``RandomState(seed)`` streams — is what rngs.py wraps).
_NUMPY_GLOBAL = frozenset(
    {
        "seed",
        "random",
        "rand",
        "randn",
        "randint",
        "random_sample",
        "random_integers",
        "ranf",
        "sample",
        "choice",
        "bytes",
        "shuffle",
        "permutation",
        "standard_normal",
        "normal",
        "uniform",
        "get_state",
        "set_state",
    }
)

_WALLCLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

_TIME_FN_NAMES = frozenset(n.split(".", 1)[1] for n in _WALLCLOCK if n.startswith("time."))


class GlobalRandomRule(Rule):
    """D1 — all randomness must flow through ``repro.util.rngs`` streams."""

    id = "global-random"
    code = "D1"
    description = (
        "no stdlib `random` and no numpy global-state RNG outside repro.util.rngs; "
        "use RngService streams so every draw is keyed by the master seed"
    )
    fix_hint = "draw from an RngService stream (services.rng.stream(...)) instead"

    def applies_to(self, mod: SourceModule) -> bool:
        return mod.module != "repro.util.rngs"

    def check(self, mod: SourceModule, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            mod, node, "import of stdlib `random` (process-global RNG state)"
                        )
            elif isinstance(node, ast.ImportFrom):
                origin = mod.resolve_import_from(node)
                if origin == "random":
                    yield self.finding(
                        mod, node, "import from stdlib `random` (process-global RNG state)"
                    )
                elif origin == "numpy.random":
                    for alias in node.names:
                        if alias.name in _NUMPY_GLOBAL:
                            yield self.finding(
                                mod,
                                node,
                                f"import of global-state numpy.random.{alias.name}",
                            )
            elif isinstance(node, ast.Attribute):
                dotted = mod.resolve(node)
                if (
                    dotted is not None
                    and dotted.startswith("numpy.random.")
                    and dotted.rsplit(".", 1)[1] in _NUMPY_GLOBAL
                ):
                    yield self.finding(
                        mod, node, f"global-state numpy RNG call `{dotted}`"
                    )


class WallClockRule(Rule):
    """D2 — no wall-clock reads; simulated time is the only time."""

    id = "wallclock"
    code = "D2"
    description = (
        "no wall-clock reads (time.time/perf_counter, datetime.now, ...): "
        "a run must be a pure function of its seed"
    )
    fix_hint = (
        "derive timing from the round counter; if the value is measurement "
        "metadata only, waive with `# repro: allow(wallclock): <why>`"
    )

    def check(self, mod: SourceModule, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.ImportFrom):
                if mod.resolve_import_from(node) == "time":
                    for alias in node.names:
                        if alias.name in _TIME_FN_NAMES:
                            yield self.finding(
                                mod, node, f"import of wall-clock `time.{alias.name}`"
                            )
            elif isinstance(node, ast.Attribute):
                dotted = mod.resolve(node)
                if dotted in _WALLCLOCK:
                    yield self.finding(mod, node, f"wall-clock read `{dotted}`")


def _is_unordered_expr(node: ast.expr) -> str | None:
    """A human label if ``node`` syntactically produces hash-ordered items."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return f"a bare {node.func.id}(...)"
        if isinstance(node.func, ast.Attribute) and node.func.attr == "keys":
            return "bare dict .keys()"
    return None


#: Call targets whose argument order reaches the output.
_ORDER_SENSITIVE_CALLS = frozenset(
    {"list", "tuple", "iter", "enumerate", "map", "filter", "zip", "islice", "chain"}
)
_ORDER_SENSITIVE_METHODS = frozenset({"fromiter", "join", "extend"})


class UnorderedIterationRule(Rule):
    """D3 — no iteration over hash-ordered collections in fingerprint code."""

    id = "unordered-iteration"
    code = "D3"
    description = (
        "no iteration over bare set/frozenset/dict.keys() in fingerprint-feeding "
        "packages unless wrapped in sorted(...); hash order is not part of the "
        "determinism contract"
    )
    fix_hint = (
        "wrap the iterable in sorted(...), or waive with a justification of why "
        "the order is deterministic (e.g. insertion-ordered dict) or cannot reach "
        "the fingerprint"
    )

    def applies_to(self, mod: SourceModule) -> bool:
        return mod.in_packages(FINGERPRINT_PACKAGES)

    def check(self, mod: SourceModule, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(mod.tree):
            sites: list[ast.expr] = []
            if isinstance(node, ast.For):
                sites.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                sites.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call):
                consumer = (
                    isinstance(node.func, ast.Name)
                    and node.func.id in _ORDER_SENSITIVE_CALLS
                ) or (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _ORDER_SENSITIVE_METHODS
                )
                if consumer:
                    sites.extend(node.args)
            for site in sites:
                label = _is_unordered_expr(site)
                if label is not None:
                    yield self.finding(
                        mod,
                        site,
                        f"iteration over {label} — hash order leaks into execution order",
                    )


class IdOrderingRule(Rule):
    """D4 — no ``id()``-derived keys or ordering in fingerprint code."""

    id = "id-ordering"
    code = "D4"
    description = (
        "no id()-based keys, hashing, or ordering in fingerprint-feeding packages: "
        "CPython addresses vary run to run"
    )
    fix_hint = (
        "key on stable identifiers (node id, message fields); identity-interning "
        "that never orders by the id value may be waived with a justification"
    )

    def applies_to(self, mod: SourceModule) -> bool:
        return mod.in_packages(FINGERPRINT_PACKAGES)

    def check(self, mod: SourceModule, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id"
                and node.args
            ):
                yield self.finding(
                    mod, node, "call to builtin id() — object addresses are not stable"
                )


class EnvReadRule(Rule):
    """D5 — configuration comes from ``ProtocolParams``, not the environment."""

    id = "env-read"
    code = "D5"
    description = (
        "no os.environ/os.getenv outside repro.config and repro.util.benchrec: "
        "ambient environment must not steer a simulation"
    )
    fix_hint = "thread the value through ProtocolParams or an explicit argument"

    _ALLOWED = ("repro.config", "repro.util.benchrec")

    def applies_to(self, mod: SourceModule) -> bool:
        return mod.module not in self._ALLOWED

    def check(self, mod: SourceModule, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.ImportFrom):
                if mod.resolve_import_from(node) == "os":
                    for alias in node.names:
                        if alias.name in ("environ", "getenv"):
                            yield self.finding(
                                mod, node, f"import of os.{alias.name} (environment read)"
                            )
            elif isinstance(node, ast.Attribute):
                dotted = mod.resolve(node)
                if dotted in ("os.environ", "os.getenv"):
                    yield self.finding(mod, node, f"environment read `{dotted}`")
