"""Waiver hygiene rules (family W).

A waiver is a hole punched in an invariant; these two rules keep every
hole small, explained, and current.  Neither rule can itself be waived.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.lint.engine import LintContext, Rule, SourceModule
from repro.analysis.lint.findings import Finding
from repro.analysis.lint.waivers import (
    FLOW_RULE_PREFIX,
    PROTO_RULE_PREFIX,
    SHARD_RULE_PREFIX,
)

__all__ = ["WaiverJustificationRule", "UnusedWaiverRule"]


class WaiverJustificationRule(Rule):
    """W1 — every waiver carries a justification (or it waives nothing)."""

    id = "waiver-justification"
    code = "W1"
    description = (
        "`# repro: allow(<rule>)` requires a justification after the closing "
        "paren; an unjustified waiver is inert and reported"
    )
    fix_hint = "write `# repro: allow(<rule>): <why this is safe here>`"

    def check(self, mod: SourceModule, ctx: LintContext) -> Iterator[Finding]:
        for waiver in mod.waivers:
            if not waiver.justified:
                yield self.finding(
                    mod,
                    waiver.comment_line,
                    f"waiver for `{waiver.rule}` has no justification (it is inert)",
                )


class UnusedWaiverRule(Rule):
    """W2 — a waiver that matches no finding is stale and must be removed."""

    id = "unused-waiver"
    code = "W2"
    post_waiver = True
    description = (
        "a justified waiver that matches no finding of its rule on its target "
        "line is stale — the code was fixed or the waiver points at the wrong line"
    )
    fix_hint = "delete the waiver comment (or move it next to the code it excuses)"

    def check(self, mod: SourceModule, ctx: LintContext) -> Iterator[Finding]:
        for waiver in mod.waivers:
            if waiver.rule.startswith(
                (FLOW_RULE_PREFIX, SHARD_RULE_PREFIX, PROTO_RULE_PREFIX)
            ):
                # flow-* / shard-* / proto-* waivers are matched (and
                # staleness-checked) by `repro flow` / `repro shard-check` /
                # `repro proto-check`, which see findings this linter cannot.
                continue
            if waiver.justified and not waiver.used:
                yield self.finding(
                    mod,
                    waiver.comment_line,
                    f"waiver for `{waiver.rule}` matches no finding "
                    f"(target line {waiver.target_line})",
                )
