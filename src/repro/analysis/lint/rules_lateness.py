"""Lateness / information-flow rules (family L).

The paper's central object is the ``(a, b)``-late adversary (Section 2,
Lemmas 3-4): every impossibility and every maintenance guarantee is stated
against an adversary that sees topology ``a`` rounds late and internal
state ``b`` rounds late.  The simulator keeps that wall with a single
choke point — :class:`repro.adversary.view.AdversaryView` — and these
rules make the wall machine-checked:

* adversary code must not be able to *reach* fresh simulator state
  (no runtime imports of the sim/core/overlay internals, no private
  attribute spelunking);
* the engine must not *hand* fresh state to the adversary (views are
  built with explicit lateness parameters; ``decide`` receives a view,
  never a live trace/network/lifecycle object).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.engine import LintContext, Rule, SourceModule
from repro.analysis.lint.findings import Finding

__all__ = [
    "AdversaryImportRule",
    "ViewInternalsRule",
    "LiveStateRule",
]

#: Packages holding fresh world state an adversary must never import at
#: runtime (TYPE_CHECKING-only imports are the sanctioned annotation path).
_FORBIDDEN_FOR_ADVERSARY = ("repro.sim", "repro.core", "repro.overlay")

#: Engine attributes that are live, current-round state.
_LIVE_STATE_ATTRS = frozenset(
    {"trace", "network", "lifecycle", "ledger", "metrics", "_protocols", "_rngs"}
)


def _is_type_checking_test(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id == "TYPE_CHECKING"
    if isinstance(node, ast.Attribute):
        return node.attr == "TYPE_CHECKING"
    return False


class AdversaryImportRule(Rule):
    """L1 — adversary modules import sim internals only under TYPE_CHECKING."""

    id = "adversary-import"
    code = "L1"
    description = (
        "repro.adversary may import repro.sim/repro.core/repro.overlay only "
        "inside `if TYPE_CHECKING:` — a runtime import is a channel to fresh state"
    )
    fix_hint = (
        "move the import under `if TYPE_CHECKING:` and use string annotations; "
        "read world state through the AdversaryView instead"
    )

    def applies_to(self, mod: SourceModule) -> bool:
        return mod.in_packages(("repro.adversary",))

    def check(self, mod: SourceModule, ctx: LintContext) -> Iterator[Finding]:
        yield from self._walk(mod, mod.tree, guarded=False)

    def _walk(
        self, mod: SourceModule, node: ast.AST, guarded: bool
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            if guarded:
                return
            if isinstance(node, ast.Import):
                origins = [alias.name for alias in node.names]
            else:
                origins = [mod.resolve_import_from(node)]
            for origin in origins:
                if any(
                    origin == p or origin.startswith(p + ".")
                    for p in _FORBIDDEN_FOR_ADVERSARY
                ):
                    yield self.finding(
                        mod, node, f"runtime import of `{origin}` from adversary code"
                    )
            return
        if isinstance(node, ast.If) and _is_type_checking_test(node.test):
            for child in node.body:
                yield from self._walk(mod, child, guarded=True)
            for child in node.orelse:
                yield from self._walk(mod, child, guarded)
            return
        for child in ast.iter_child_nodes(node):
            yield from self._walk(mod, child, guarded)


class ViewInternalsRule(Rule):
    """L2 — adversary strategies use only the public AdversaryView API."""

    id = "view-internals"
    code = "L2"
    description = (
        "adversary code may not touch private attributes of other objects "
        "(view._trace, view._lifecycle, ...): only the AdversaryView public "
        "API is lateness-clamped"
    )
    fix_hint = "use the public AdversaryView accessors (edges_at, alive, age_of, ...)"

    def applies_to(self, mod: SourceModule) -> bool:
        return mod.in_packages(("repro.adversary",)) and mod.module != "repro.adversary.view"

    def check(self, mod: SourceModule, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Attribute):
                continue
            attr = node.attr
            if not attr.startswith("_") or attr.startswith("__"):
                continue
            base = node.value
            if isinstance(base, ast.Name) and base.id in ("self", "cls"):
                continue
            yield self.finding(
                mod,
                node,
                f"access to private attribute `{attr}` of a foreign object",
            )


class LiveStateRule(Rule):
    """L3 — the engine hands the adversary views, never live state."""

    id = "live-state-to-adversary"
    code = "L3"
    description = (
        "AdversaryView must be constructed with explicit lateness keywords, and "
        ".decide(...) must receive a view — never a live trace/network/lifecycle "
        "object or the engine itself"
    )
    fix_hint = (
        "build AdversaryView(t, trace, lifecycle, topology_lateness=..., "
        "state_lateness=...) and pass only that view to the adversary"
    )

    def applies_to(self, mod: SourceModule) -> bool:
        return mod.in_packages(("repro.sim", "repro.core"))

    def check(self, mod: SourceModule, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
            if name == "AdversaryView":
                keywords = {kw.arg for kw in node.keywords}
                missing = {"topology_lateness", "state_lateness"} - keywords
                if missing:
                    yield self.finding(
                        mod,
                        node,
                        "AdversaryView constructed without explicit "
                        f"{' and '.join(sorted(missing))} keyword(s)",
                    )
            elif name == "decide" and isinstance(func, ast.Attribute):
                args = list(node.args) + [kw.value for kw in node.keywords]
                for arg in args:
                    if isinstance(arg, ast.Attribute) and arg.attr in _LIVE_STATE_ATTRS:
                        yield self.finding(
                            mod,
                            arg,
                            f"live engine state `{ast.unparse(arg)}` passed to "
                            "an adversary decide() callback",
                        )
                    elif isinstance(arg, ast.Name) and arg.id in ("self", "engine"):
                        yield self.finding(
                            mod,
                            arg,
                            f"`{arg.id}` passed to an adversary decide() callback",
                        )
