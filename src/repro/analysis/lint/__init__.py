"""``repro.analysis.lint`` — the determinism & lateness linter.

An AST-based static-analysis pass that machine-checks the simulator's two
load-bearing invariants before a simulation ever runs:

1. **Determinism** — a run is a pure function of its seed (no global RNG
   state, wall clocks, hash-order iteration, ``id()`` keys, or environment
   reads in the packages that feed the golden fingerprints);
2. **Lateness** — adversary code can reach world state only through the
   :class:`~repro.adversary.view.AdversaryView` choke point, and the
   engine hands it nothing fresher.

Run it as ``repro lint`` (see ``docs/ANALYSIS.md``), or from code::

    from repro.analysis.lint import run_lint
    report = run_lint(root=repo_root)   # defaults: src/repro, all rules
    assert report.ok, report.format_text()

Findings can be waived inline (``# repro: allow(<rule>): <why>``) or
grandfathered in the committed ``lint-baseline.json``.
"""

from repro.analysis.lint.baseline import (
    BASELINE_SCHEMA,
    DEFAULT_BASELINE_NAME,
    Baseline,
    write_baseline,
)
from repro.analysis.lint.engine import (
    LintContext,
    LintError,
    LintReport,
    Rule,
    SourceModule,
    run_lint,
)
from repro.analysis.lint.findings import SEVERITIES, Finding
from repro.analysis.lint.fix import fix_unused_waivers
from repro.analysis.lint.registry import ALL_RULES, resolve_rules, rule_table
from repro.analysis.lint.waivers import (
    FLOW_RULE_PREFIX,
    PROTO_RULE_PREFIX,
    SHARD_RULE_PREFIX,
    Waiver,
    scan_directives,
)

__all__ = [
    "ALL_RULES",
    "BASELINE_SCHEMA",
    "Baseline",
    "DEFAULT_BASELINE_NAME",
    "FLOW_RULE_PREFIX",
    "Finding",
    "LintContext",
    "LintError",
    "LintReport",
    "PROTO_RULE_PREFIX",
    "Rule",
    "SEVERITIES",
    "SHARD_RULE_PREFIX",
    "SourceModule",
    "Waiver",
    "fix_unused_waivers",
    "resolve_rules",
    "rule_table",
    "run_lint",
    "scan_directives",
    "write_baseline",
]
