"""Rule registry: every shipped rule, and spec parsing for ``--rules``."""

from __future__ import annotations

from typing import Iterable

from repro.analysis.lint.engine import LintError, Rule
from repro.analysis.lint.rules_determinism import (
    EnvReadRule,
    GlobalRandomRule,
    IdOrderingRule,
    UnorderedIterationRule,
    WallClockRule,
)
from repro.analysis.lint.rules_exports import AllDriftRule
from repro.analysis.lint.rules_lateness import (
    AdversaryImportRule,
    LiveStateRule,
    ViewInternalsRule,
)
from repro.analysis.lint.rules_waivers import UnusedWaiverRule, WaiverJustificationRule

__all__ = ["ALL_RULES", "resolve_rules", "rule_table"]

#: Every shipped rule, families in order: determinism, lateness, exports,
#: waiver hygiene.
ALL_RULES: tuple[Rule, ...] = (
    GlobalRandomRule(),
    WallClockRule(),
    UnorderedIterationRule(),
    IdOrderingRule(),
    EnvReadRule(),
    AdversaryImportRule(),
    ViewInternalsRule(),
    LiveStateRule(),
    AllDriftRule(),
    WaiverJustificationRule(),
    UnusedWaiverRule(),
)


def resolve_rules(spec: str | Iterable[str] | None) -> tuple[Rule, ...]:
    """Rules selected by a comma/space separated list of ids or codes.

    ``None`` or an empty spec selects every rule.  Unknown entries raise
    :class:`LintError` listing what is available.
    """
    if spec is None:
        return ALL_RULES
    if isinstance(spec, str):
        wanted = [s for chunk in spec.split(",") for s in chunk.split()]
    else:
        wanted = list(spec)
    wanted = [w.strip().lower() for w in wanted if w.strip()]
    if not wanted:
        return ALL_RULES
    by_key = {r.id: r for r in ALL_RULES}
    by_key.update({r.code.lower(): r for r in ALL_RULES})
    selected: list[Rule] = []
    for key in wanted:
        rule = by_key.get(key)
        if rule is None:
            known = ", ".join(f"{r.code}/{r.id}" for r in ALL_RULES)
            raise LintError(f"unknown rule {key!r}; known rules: {known}")
        if rule not in selected:
            selected.append(rule)
    return tuple(selected)


def rule_table() -> str:
    """A plain-text table of every rule (for ``repro lint --list-rules``)."""
    width = max(len(r.id) for r in ALL_RULES)
    lines = []
    for rule in ALL_RULES:
        lines.append(f"{rule.code:>4}  {rule.id:<{width}}  {rule.description}")
    return "\n".join(lines)
