"""Inline lint directives: waivers and module overrides.

Two comment directives are recognised anywhere in a scanned file:

``# repro: allow(<rule>): <justification>``
    Waive one rule on one line.  A trailing comment waives its own line; a
    standalone comment line waives the next code line (so long expressions
    can carry the waiver *inside* them, right above the offending part).
    The justification is **required** — a bare ``allow(<rule>)`` does not
    waive anything and is itself reported (rule ``waiver-justification``),
    and a justified waiver that matches no finding is reported too (rule
    ``unused-waiver``).  Waivers cannot waive either of those two rules.

``# repro: module(<dotted.name>)``
    Pretend the file is the named module when rules decide whether they
    apply.  This exists for the test fixture corpus, which must exercise
    package-scoped rules from files living under ``tests/``.

Directives are extracted from real COMMENT tokens (via :mod:`tokenize`),
so directive-shaped text inside string literals is ignored.
"""

from __future__ import annotations

import re
import tokenize
from dataclasses import dataclass, field

__all__ = [
    "FLOW_RULE_PREFIX",
    "PROTO_RULE_PREFIX",
    "SHARD_RULE_PREFIX",
    "Waiver",
    "scan_directives",
]

#: Waivers for rules with this prefix belong to the information-flow
#: analysis (``repro flow``); the linter's W2 staleness check skips them
#: and the flow engine audits them instead.
FLOW_RULE_PREFIX = "flow-"

#: Waivers for rules with this prefix belong to the shard analyzer
#: (``repro shard-check``); like flow waivers, W2 skips them and the
#: shard engine audits their staleness itself.
SHARD_RULE_PREFIX = "shard-"

#: Waivers for rules with this prefix belong to the protocol analyzer
#: (``repro proto-check``, rules ``protocol-*``); like flow and shard
#: waivers, W2 skips them and the proto engine audits their staleness
#: itself.
PROTO_RULE_PREFIX = "protocol-"

_WAIVER_RE = re.compile(r"#\s*repro:\s*allow\(\s*([A-Za-z0-9_-]+)\s*\)\s*:?\s*(.*)$")
_MODULE_RE = re.compile(r"#\s*repro:\s*module\(\s*([A-Za-z0-9_.]+)\s*\)")


@dataclass
class Waiver:
    """One parsed ``allow`` directive."""

    rule: str
    justification: str
    comment_line: int
    target_line: int
    used: bool = field(default=False, compare=False)

    @property
    def justified(self) -> bool:
        return bool(self.justification.strip())


def _is_comment_only(line: str) -> bool:
    stripped = line.strip()
    return not stripped or stripped.startswith("#")


def _comment_tokens(lines: list[str]) -> list[tuple[int, int, str]]:
    """``(line, column, text)`` for every real comment token in the file."""
    source = iter(line + "\n" for line in lines)
    comments: list[tuple[int, int, str]] = []
    try:
        for tok in tokenize.generate_tokens(lambda: next(source)):
            if tok.type == tokenize.COMMENT:
                comments.append((tok.start[0], tok.start[1], tok.string))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover - defensive
        pass
    return comments


def scan_directives(lines: list[str]) -> tuple[list[Waiver], str | None]:
    """Parse all directives out of a file's lines (1-based line numbers).

    Returns ``(waivers, module_override)`` where ``module_override`` is the
    dotted name of the last ``module(...)`` directive, or ``None``.
    """
    waivers: list[Waiver] = []
    module: str | None = None
    for i, col, text in _comment_tokens(lines):
        m = _MODULE_RE.search(text)
        if m:
            module = m.group(1)
        m = _WAIVER_RE.search(text)
        if m is None:
            continue
        standalone = not lines[i - 1][:col].strip()
        target = i
        if standalone:
            # Waive the next line that is actual code (skip blank lines and
            # further comments, so waiver comments can stack).
            for j in range(i, len(lines)):
                if not _is_comment_only(lines[j]):
                    target = j + 1
                    break
        waivers.append(
            Waiver(
                rule=m.group(1),
                justification=m.group(2).strip(),
                comment_line=i,
                target_line=target,
            )
        )
    return waivers, module
