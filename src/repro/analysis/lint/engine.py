"""Rule engine of the repro linter.

The engine is deliberately boring: it parses every file once with
:mod:`ast`, hands each :class:`SourceModule` to every applicable
:class:`Rule`, matches inline waivers, applies the committed baseline, and
returns a :class:`LintReport`.  All the judgement lives in the rules
(:mod:`~repro.analysis.lint.rules_determinism`,
:mod:`~repro.analysis.lint.rules_lateness`,
:mod:`~repro.analysis.lint.rules_exports`,
:mod:`~repro.analysis.lint.rules_waivers`).

Rules see *syntax*, not types: they are heuristics tuned so the invariants
they guard (bit-for-bit determinism; the adversary's lateness wall) cannot
be broken *silently*.  A construction a rule cannot see (e.g. iterating a
set received through a variable) is out of scope by design — the golden
fingerprint tests remain the backstop.
"""

from __future__ import annotations

import abc
import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis.lint.baseline import Baseline
from repro.analysis.lint.findings import Finding
from repro.analysis.lint.waivers import scan_directives
from repro.analysis.source_cache import SourceCache, collect_py_files

__all__ = [
    "LintError",
    "SourceModule",
    "LintContext",
    "Rule",
    "LintReport",
    "run_lint",
]

#: Rules whose findings can never be waived inline (waiving the waiver
#: checker would defeat the point).
NON_WAIVABLE = frozenset({"waiver-justification", "unused-waiver", "parse-error"})


class LintError(Exception):
    """Invalid linter invocation (unknown rule, bad path, ...)."""


def _derive_module(relpath: str) -> str:
    """Dotted module name from a repo-relative path (``repro``-anchored)."""
    parts = Path(relpath).parts
    if "repro" in parts:
        parts = parts[parts.index("repro") :]
    name = ".".join(parts)
    if name.endswith(".py"):
        name = name[: -len(".py")]
    if name.endswith(".__init__"):
        name = name[: -len(".__init__")]
    return name


class SourceModule:
    """One parsed file plus everything rules need to reason about it."""

    def __init__(self, path: Path, relpath: str, source: str) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self.waivers, override = scan_directives(self.lines)
        self.module = override or _derive_module(relpath)
        self._import_map: dict[str, str] | None = None

    @classmethod
    def from_path(cls, path: Path, root: Path) -> "SourceModule":
        try:
            rel = path.resolve().relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        return cls(path, rel, path.read_text())

    @property
    def is_init(self) -> bool:
        return self.path.name == "__init__.py"

    @property
    def package(self) -> str:
        """The package containing this module (itself, for ``__init__``)."""
        if self.is_init:
            return self.module
        return self.module.rpartition(".")[0]

    # -- name resolution ------------------------------------------------

    @property
    def import_map(self) -> dict[str, str]:
        """Local name -> absolute dotted origin, from every import statement."""
        if self._import_map is None:
            mapping: dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        if alias.asname:
                            mapping[alias.asname] = alias.name
                        else:
                            head = alias.name.split(".")[0]
                            mapping[head] = head
                elif isinstance(node, ast.ImportFrom):
                    origin = self.resolve_import_from(node)
                    for alias in node.names:
                        local = alias.asname or alias.name
                        mapping[local] = f"{origin}.{alias.name}" if origin else alias.name
            self._import_map = mapping
        return self._import_map

    def resolve_import_from(self, node: ast.ImportFrom) -> str:
        """Absolute dotted module a ``from ... import`` pulls from."""
        if not node.level:
            return node.module or ""
        base = self.package.split(".") if self.package else []
        if node.level > 1:
            base = base[: len(base) - (node.level - 1)]
        if node.module:
            base = base + node.module.split(".")
        return ".".join(base)

    def resolve(self, node: ast.expr) -> str | None:
        """Dotted name of a ``Name``/``Attribute`` chain, through import aliases."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        head = self.import_map.get(parts[0], parts[0])
        return ".".join([head] + parts[1:])

    def in_packages(self, prefixes: Iterable[str]) -> bool:
        """Whether this module lives under any of the dotted prefixes."""
        return any(
            self.module == p or self.module.startswith(p + ".") for p in prefixes
        )


class LintContext:
    """Cross-file services available to rules (sibling ``__all__`` lookups).

    Lookups go through a :class:`SourceCache`, so files the main lint loop
    already parsed are never parsed a second time by a rule pass.
    """

    def __init__(self, root: Path, cache: SourceCache | None = None) -> None:
        self.root = root
        self.cache = cache if cache is not None else SourceCache(root)
        self._exports: dict[Path, list[str] | None] = {}

    def module_exports(self, path: Path) -> list[str] | None:
        """The literal ``__all__`` of a file, or ``None`` if absent/unreadable."""
        path = path.resolve()
        if path not in self._exports:
            result: list[str] | None = None
            mod = self.cache.try_module(path)
            if mod is not None:
                for node in mod.tree.body:
                    if isinstance(node, ast.Assign) and any(
                        isinstance(t, ast.Name) and t.id == "__all__"
                        for t in node.targets
                    ):
                        if isinstance(node.value, (ast.List, ast.Tuple)):
                            elts = node.value.elts
                            if all(
                                isinstance(e, ast.Constant) and isinstance(e.value, str)
                                for e in elts
                            ):
                                result = [e.value for e in elts]
            self._exports[path] = result
        return self._exports[path]


class Rule(abc.ABC):
    """One named check.  Subclasses set the class attributes and ``check``."""

    id: str = ""
    code: str = ""
    description: str = ""
    fix_hint: str = ""
    severity: str = "error"
    #: Post-waiver rules run after findings have been matched to waivers
    #: (needed by ``unused-waiver``).
    post_waiver: bool = False

    def applies_to(self, mod: SourceModule) -> bool:
        return True

    @abc.abstractmethod
    def check(self, mod: SourceModule, ctx: LintContext) -> Iterator[Finding]:
        """Yield findings for one module."""

    def finding(
        self,
        mod: SourceModule,
        where: ast.AST | int,
        message: str,
        fix_hint: str | None = None,
    ) -> Finding:
        line = where if isinstance(where, int) else getattr(where, "lineno", 0)
        return Finding(
            path=mod.relpath,
            line=line,
            rule=self.id,
            message=message,
            severity=self.severity,
            fix_hint=self.fix_hint if fix_hint is None else fix_hint,
        )


@dataclass
class LintReport:
    """Everything one lint run produced."""

    root: Path
    files: int
    findings: list[Finding] = field(default_factory=list)
    waived: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale_baseline: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "root": str(self.root),
            "files": self.files,
            "counts": {
                "active": len(self.findings),
                "waived": len(self.waived),
                "baselined": len(self.baselined),
                "stale_baseline": len(self.stale_baseline),
            },
            "findings": [f.to_dict() for f in self.findings],
            "waived": [f.to_dict() for f in self.waived],
            "baselined": [f.to_dict() for f in self.baselined],
            "stale_baseline": self.stale_baseline,
        }

    def format_text(self) -> str:
        out: list[str] = []
        for f in self.findings:
            out.append(f.format())
            if f.fix_hint:
                out.append(f"    fix: {f.fix_hint}")
        for entry in self.stale_baseline:
            out.append(
                f"stale baseline entry: {entry['path']} [{entry['rule']}] "
                "no longer matches anything — remove it"
            )
        out.append(
            f"{self.files} file(s): {len(self.findings)} finding(s), "
            f"{len(self.waived)} waived, {len(self.baselined)} baselined"
        )
        return "\n".join(out)


def _collect_files(paths: Iterable[Path]) -> list[Path]:
    try:
        return collect_py_files(paths)
    except FileNotFoundError as exc:
        raise LintError(str(exc)) from None


def run_lint(
    paths: Iterable[Path | str] | None = None,
    *,
    root: Path | str | None = None,
    rules: Iterable[Rule] | None = None,
    baseline: Path | str | Baseline | None = None,
    cache: SourceCache | None = None,
) -> LintReport:
    """Run the linter and return a :class:`LintReport`.

    ``paths`` defaults to ``<root>/src/repro``; ``root`` defaults to the
    current directory.  ``baseline`` may be a path (missing file = empty
    baseline), a loaded :class:`Baseline`, or ``None`` for no baseline.
    ``cache`` is an optional shared :class:`SourceCache` — pass the same
    instance to :func:`repro.analysis.flow.run_flow` and each file is
    parsed once for both tools.
    """
    if rules is None:
        from repro.analysis.lint.registry import ALL_RULES

        rules = ALL_RULES
    rules = tuple(rules)
    root = Path(root) if root is not None else Path.cwd()
    root = root.resolve()
    targets = [Path(p) for p in paths] if paths is not None else [root / "src" / "repro"]
    files = _collect_files(targets)
    if cache is None:
        cache = SourceCache(root)
    ctx = LintContext(root, cache)

    pre = [r for r in rules if not r.post_waiver]
    post = [r for r in rules if r.post_waiver]
    active: list[Finding] = []
    waived: list[Finding] = []
    for path in files:
        try:
            mod = cache.module(path)
        except SyntaxError as exc:
            try:
                rel = path.relative_to(root).as_posix()
            except ValueError:
                rel = path.as_posix()
            active.append(
                Finding(
                    path=rel,
                    line=exc.lineno or 0,
                    rule="parse-error",
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        raw: list[Finding] = []
        for rule in pre:
            if rule.applies_to(mod):
                raw.extend(rule.check(mod, ctx))
        # Waiver matching: a justified waiver absorbs every finding of its
        # rule on its target line.  Modules can come from a shared cache, so
        # the mutable `used` flags are reset for this run.
        for w in mod.waivers:
            w.used = False
        live_waivers = [w for w in mod.waivers if w.justified]
        for f in raw:
            matched = False
            if f.rule not in NON_WAIVABLE:
                for w in live_waivers:
                    if w.rule == f.rule and w.target_line == f.line:
                        w.used = True
                        matched = True
            (waived if matched else active).append(f)
        for rule in post:
            if rule.applies_to(mod):
                active.extend(rule.check(mod, ctx))

    active.sort()
    waived.sort()
    if baseline is None:
        base = Baseline([])
    elif isinstance(baseline, Baseline):
        base = baseline
    else:
        base = Baseline.load(baseline)
    final, baselined, stale = base.partition(active)
    return LintReport(
        root=root,
        files=len(files),
        findings=final,
        waived=waived,
        baselined=baselined,
        stale_baseline=stale,
    )

