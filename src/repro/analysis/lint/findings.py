"""The findings model of the repro linter.

A :class:`Finding` is one rule violation at one source location.  Findings
are value objects: two findings with the same ``(path, rule, message)``
triple are the *same* defect for baseline purposes, even when the line
number drifted because unrelated code above it moved — that is what lets a
committed baseline survive ordinary refactors.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SEVERITIES", "Finding"]

#: Recognised severities, most severe first.  Every shipped rule currently
#: reports ``error`` — the field exists so a future advisory rule does not
#: need a schema change.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation (``order=True`` gives stable path/line sorting)."""

    path: str
    line: int
    rule: str
    message: str
    severity: str = "error"
    fix_hint: str = ""

    def baseline_key(self) -> tuple[str, str, str]:
        """Identity used by the baseline: line numbers deliberately excluded."""
        return (self.path, self.rule, self.message)

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "fix_hint": self.fix_hint,
        }

    def format(self) -> str:
        """``path:line: [rule] message`` — clickable in most terminals."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"
