"""The committed findings baseline (grandfathered violations).

The baseline is a small JSON file committed at the repository root::

    {
      "schema": 1,
      "findings": [
        {"path": "src/repro/sim/profile.py", "rule": "wallclock",
         "message": "...exact finding message...",
         "note": "why this one is grandfathered"}
      ]
    }

Entries match findings by ``(path, rule, message)`` — never by line number,
so unrelated edits above a grandfathered site do not un-baseline it.
Matching is multiset-style: one entry absorbs one finding, a duplicated
defect needs a duplicated entry.  Entries that match nothing are *stale*
and reported so the baseline only ever shrinks.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.lint.findings import Finding

__all__ = ["BASELINE_SCHEMA", "DEFAULT_BASELINE_NAME", "Baseline", "write_baseline"]

BASELINE_SCHEMA = 1

#: File name looked up at the repository root by default.
DEFAULT_BASELINE_NAME = "lint-baseline.json"

_KEY_FIELDS = ("path", "rule", "message")


class Baseline:
    """Grandfathered findings loaded from (or destined for) a JSON file."""

    def __init__(self, entries: list[dict] | None = None) -> None:
        self.entries = list(entries or [])
        for i, entry in enumerate(self.entries):
            for name in _KEY_FIELDS:
                if not isinstance(entry.get(name), str) or not entry[name]:
                    raise ValueError(f"baseline entry {i}: missing field {name!r}")

    @classmethod
    def load(cls, path: Path | str) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls([])
        data = json.loads(path.read_text())
        if not isinstance(data, dict) or data.get("schema") != BASELINE_SCHEMA:
            raise ValueError(f"{path}: expected schema {BASELINE_SCHEMA}")
        entries = data.get("findings")
        if not isinstance(entries, list):
            raise ValueError(f"{path}: findings must be a list")
        return cls(entries)

    def partition(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding], list[dict]]:
        """Split findings into ``(active, baselined)`` plus stale entries."""
        budget: dict[tuple[str, str, str], int] = {}
        for entry in self.entries:
            key = (entry["path"], entry["rule"], entry["message"])
            budget[key] = budget.get(key, 0) + 1
        active: list[Finding] = []
        baselined: list[Finding] = []
        for finding in findings:
            key = finding.baseline_key()
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                baselined.append(finding)
            else:
                active.append(finding)
        stale: list[dict] = []
        for entry in self.entries:
            key = (entry["path"], entry["rule"], entry["message"])
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                stale.append(entry)
        return active, baselined, stale


def write_baseline(
    path: Path | str, findings: list[Finding], notes: dict[tuple[str, str, str], str] | None = None
) -> Path:
    """Write a baseline covering ``findings`` (sorted, deterministic output)."""
    entries = []
    for finding in sorted(findings):
        entry = {"path": finding.path, "rule": finding.rule, "message": finding.message}
        note = (notes or {}).get(finding.baseline_key())
        if note:
            entry["note"] = note
        entries.append(entry)
    payload = {"schema": BASELINE_SCHEMA, "findings": entries}
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path
