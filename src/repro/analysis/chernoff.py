"""Chernoff tail bounds (Lemma 2) and the envelopes experiments check against.

The paper's statements hold "w.h.p." — with probability ``1 - 1/n^k`` for a
tunable ``k``.  Any finite simulation can only test such a claim
statistically; these helpers compute the theoretical tails so experiments can
assert "the observed deviation is within the Chernoff envelope" rather than
eyeballing constants.

For negatively associated (NA) 0/1 variables with sum ``X``, ``E[X] = mu``:

    P[X >= (1+d) mu] <= exp(-d^2 mu / (2 + d))     (upper tail)
    P[X <= (1-d) mu] <= exp(-d^2 mu / 2)           (lower tail)

(we use the standard sharpened forms; the paper's Lemma 2 lists slightly
looser exponents with typos — constants do not matter for any claim here).
"""

from __future__ import annotations

import math

__all__ = [
    "upper_tail",
    "lower_tail",
    "deviation_for_failure_prob",
    "min_mu_for_whp",
    "whp_threshold",
]


def upper_tail(mu: float, delta: float) -> float:
    """``P[X >= (1 + delta) mu]`` bound for NA 0/1 sums."""
    if mu < 0 or delta < 0:
        raise ValueError("mu and delta must be non-negative")
    if mu == 0 or delta == 0:
        return 1.0
    return math.exp(-(delta * delta) * mu / (2.0 + delta))


def lower_tail(mu: float, delta: float) -> float:
    """``P[X <= (1 - delta) mu]`` bound for NA 0/1 sums (``0 <= delta <= 1``)."""
    if mu < 0:
        raise ValueError("mu must be non-negative")
    if not 0.0 <= delta <= 1.0:
        raise ValueError("delta must lie in [0, 1] for the lower tail")
    if mu == 0 or delta == 0:
        return 1.0
    return math.exp(-(delta * delta) * mu / 2.0)


def deviation_for_failure_prob(mu: float, p_fail: float) -> float:
    """The relative deviation ``delta`` whose lower-tail bound equals ``p_fail``.

    Solves ``exp(-delta^2 mu / 2) = p_fail``; values > 1 mean the bound
    cannot certify that failure probability at this expectation.
    """
    if mu <= 0:
        raise ValueError("mu must be positive")
    if not 0.0 < p_fail < 1.0:
        raise ValueError("p_fail must lie in (0, 1)")
    return math.sqrt(2.0 * math.log(1.0 / p_fail) / mu)


def whp_threshold(n: int, k: int = 1) -> float:
    """The failure probability budget ``1/n^k``."""
    if n < 2 or k < 1:
        raise ValueError("need n >= 2 and k >= 1")
    return float(n) ** (-k)


def min_mu_for_whp(n: int, k: int = 1, delta: float = 0.5) -> float:
    """Smallest expectation at which a ``delta`` lower deviation is w.h.p.-rare.

    This is the quantitative reason swarms have ``Theta(log n)`` members:
    ``mu >= 2 k ln(n) / delta^2`` makes ``P[X <= (1-delta) mu] <= 1/n^k``.
    """
    if not 0.0 < delta <= 1.0:
        raise ValueError("delta must lie in (0, 1]")
    return 2.0 * k * math.log(n) / (delta * delta)
