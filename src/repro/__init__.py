"""Reproduction of *"Always be Two Steps Ahead of Your Enemy"* (Götte,
Ravindran Vijayalakshmi, Scheideler — arXiv:1810.07077 / IPDPS).

The library implements, from scratch:

* the paper's synchronous-round network model with an ``(a, b)``-late
  omniscient adversary and an enforced ``(C, T)`` churn budget
  (:mod:`repro.sim`, :mod:`repro.adversary`);
* the **Linearized De Bruijn Swarm** topology (:mod:`repro.overlay`);
* swarm-to-swarm routing **A_ROUTING** and uniform peer sampling
  **A_SAMPLING** (:mod:`repro.routing`);
* the main contribution — the maintenance protocol **A_LDS ∥ A_RANDOM**
  that rebuilds the whole overlay every two rounds (:mod:`repro.core`);
* the Section-2 impossibility attacks and baselines they defeat
  (:mod:`repro.adversary`, :mod:`repro.baselines`);
* an experiment harness regenerating every paper artefact
  (:mod:`repro.experiments`).

Quickstart::

    from repro import ProtocolParams, MaintenanceSimulation
    from repro.adversary import RandomChurnAdversary
    import numpy as np

    params = ProtocolParams(n=64, alpha=0.25, kappa=1.25, delta=3, tau=8)
    sim = MaintenanceSimulation(params, RandomChurnAdversary(params))
    sim.run(params.bootstrap_rounds + 20)
    sim.send_probes(8, np.random.default_rng(0))
    sim.run(2 * params.dilation)
    assert sim.probe_report().delivery_rate == 1.0
"""

from repro.config import ProtocolParams, default_params, env_flag
from repro.core import MaintenanceNode, MaintenanceSimulation, Phase
from repro.overlay import LDGGraph, LDSGraph, PositionIndex, build_lds
from repro.routing import GreedyRouter, SeriesRouter
from repro.sim import Engine, NodeContext, NodeProtocol

__version__ = "1.0.0"

__all__ = [
    "Engine",
    "GreedyRouter",
    "LDGGraph",
    "LDSGraph",
    "MaintenanceNode",
    "MaintenanceSimulation",
    "NodeContext",
    "NodeProtocol",
    "Phase",
    "PositionIndex",
    "ProtocolParams",
    "SeriesRouter",
    "build_lds",
    "default_params",
    "env_flag",
    "__version__",
]
