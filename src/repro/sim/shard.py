"""Sharded multi-process round engine over shared-memory columnar state.

The synchronous engine's compute phase is embarrassingly parallel *by
construction*: every node draws from its own deterministic rng stream
(:meth:`repro.util.rngs.RngService.node_stream`), reads only its own inbox,
and publishes sends whose observable order is the global sorted-node-id
order.  This module exploits that: node ids are partitioned into ``W``
position bands, each owned by a persistent forked worker process, and every
round the master

1. runs the adversary and receive phases as usual (single-process),
2. encodes each worker's band payload — inboxes, shared hop columns, and
   the control scalars — into a shared-memory **downlink slab**
   (:mod:`repro.sim.exchange`), then sends only offsets and counts down
   the pipe,
3. lets workers run ``on_round`` for their nodes — in sorted id order, with
   the nodes' own rng streams, collecting sends into a local log — which
   each worker encodes into its region of a shared **uplink slab**,
4. splices the returned send logs back into the master network **in global
   sorted node-id order**, re-canonicalising routed messages by ``msg_id``,
5. closes the send phase, traces, and records metrics exactly as before.

The pipes are a *control plane*: a round's control message and ack are a
few hundred bytes regardless of traffic.  Bulk bytes cross the boundary
exactly once, as shared-memory writes (``exchange_bytes_shm``), instead of
being pickled per worker per round (PR 7 moved ~16 MB/round through the
pipes at n=512, W=2; the counters on :class:`ShardRunner.stats` make the
reduction observable in ``repro profile --workers``).

Determinism argument (pinned by the workers∈{1,2,4} identity suite):

* **Ownership is static per node** — a node's protocol object and rng
  stream live in exactly one worker from spawn to death, so its state and
  randomness evolve exactly as in the single-process engine.
* **Send order** — the master network's per-category send lists are rebuilt
  by walking nodes in global sorted id order and replaying each node's
  sends in issue order; that equals the single-process order, because the
  single-process loop *is* "nodes in sorted id order, sends in issue
  order".
* **Message identity** — receiver-side dedup is by ``(message identity,
  step)``.  Frame encoding across the process boundary memoises by object
  identity and decodes with a per-offset memo (:mod:`repro.util.arena`),
  reproducing exactly the sharing structure a per-payload pickle memo gave
  PR 7; the master additionally re-canonicalises every routed message by
  its ``msg_id`` (unique per logical request by construction) before it
  enters the network, so all receiver copies of one logical hop are again
  one object (or one plane row).
* **Everything else is master-side** — churn, fault fates, delivery
  grouping, tracing, and metrics never left the master, so their rng and
  ordering are untouched.

Slab lifecycle: the master owns every segment (created through
:mod:`repro.util.arena`'s tracked registry and destroyed in a ``finally``
at :meth:`ShardRunner.close`, so a broken pipe during teardown cannot leak
``/dev/shm`` blocks).  When a downlink round outgrows the slab the master
allocates a doubled generation, re-encodes, and announces the new
``(gen, name)`` in the control message — workers re-attach on the gen
bump.  When a worker's uplink region overflows, that worker falls back to
the pipe for that one round (tagged, and honestly counted as pipe bytes)
and the master regrows the uplink slab before the next round's control.

Scalar node state (phase / epoch / position) is published into a third
shared slab (:class:`repro.core.nodestore.NodeStore` columns): each worker
writes its band's rows — bands are contiguous row ranges, so a shard's
published state is an array slice — and the master reads population
aggregates without gathering objects.  Full protocol objects cross the
boundary only at explicit :meth:`ShardRunner.sync_protocols` gather points
(audits, fingerprints).
"""

from __future__ import annotations

import atexit
import multiprocessing
import pickle
import threading
import types
from itertools import accumulate
from typing import TYPE_CHECKING, Iterable

from repro.config import env_flag
from repro.core.nodestore import NodeStore
from repro.routing.messages import Hop, RoutedMessage
from repro.sim import exchange
from repro.sim.hopplane import HopDelivery, HopPlane
from repro.util import arena as shmseg
from repro.util.arena import ArenaFull, ByteArena, FrameDecoder, FrameEncoder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.sim.engine import Engine

__all__ = ["band_of", "assign_bands", "ShardSlab", "ShardRunner"]


def _dumps(obj: object) -> bytes:
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


# ----------------------------------------------------------------------
# Runtime sanitizer (the dynamic sibling of `repro shard-check`)
# ----------------------------------------------------------------------

#: ``REPRO_SHARD_SANITIZE=1`` arms band-ownership write asserts and
#: pipe-payload codec asserts on every boundary crossing.  Read once at
#: import; tests monkeypatch the flag before the runner forks (workers
#: inherit the armed value through ``fork``).
_SANITIZE = env_flag("REPRO_SHARD_SANITIZE")

#: Types that must never cross the pipe: the S2 rule's banned set, checked
#: at runtime.  Locks have no public type, so sample one of each.
_BANNED_PAYLOAD_TYPES = (
    types.FunctionType,
    types.BuiltinFunctionType,
    types.GeneratorType,
    memoryview,
    type(threading.Lock()),
    type(threading.RLock()),
    type(threading.Condition()),
    type(threading.Event()),
)


def _assert_codec_safe(obj: object, _depth: int = 6) -> None:
    """Sanitizer: reject boundary-unsafe values before they hit the pipe.

    Containers are walked a few levels deep — enough to cover every real
    control/uplink payload shape (nested tuples of lists of messages)
    without turning the assert into a deep traversal of protocol state.
    """
    if isinstance(obj, _BANNED_PAYLOAD_TYPES):
        raise AssertionError(
            f"shard sanitizer: {type(obj).__name__} crossing the process "
            "boundary — pipe payloads must stay in the approved codec set "
            "(see shard-boundary-types in docs/ANALYSIS.md)"
        )
    if _depth <= 0:
        return
    if isinstance(obj, dict):
        for k, v in obj.items():
            _assert_codec_safe(k, _depth - 1)
            _assert_codec_safe(v, _depth - 1)
    elif isinstance(obj, (list, tuple, set, frozenset)):
        for v in obj:
            _assert_codec_safe(v, _depth - 1)


def _assert_band_owned(engine: "Engine", band: int, ids: Iterable[int]) -> None:
    """Sanitizer: a worker publishes only rows whose position is in its band.

    Ownership is a pure function of the epoch-0 position hash (the same
    rule :func:`assign_bands` uses), so the check needs no master round
    trip and cannot itself drift.
    """
    workers = engine.workers
    h = engine.services.position_hash
    for v in ids:
        owner = band_of(h.position(v, 0), workers)
        if owner != band:
            raise AssertionError(
                f"shard sanitizer: worker {band} publishing state for node "
                f"{v}, owned by band {owner} — bands never rebalance"
            )


def _worker_send(conn, obj: object) -> None:
    """Every worker→master pipe send funnels through here (codec assert)."""
    if _SANITIZE:
        _assert_codec_safe(obj)
    conn.send_bytes(_dumps(obj))


# ----------------------------------------------------------------------
# Band assignment
# ----------------------------------------------------------------------


def band_of(pos: float, workers: int) -> int:
    """The shard owning ring position ``pos``: uniform contiguous bands.

    Band ``k`` covers ``[k/W, (k+1)/W)``; the boundaries are fixed for the
    whole run, so ownership is a pure function of the position and never
    rebalances (rebalancing would move rng streams between processes).
    """
    k = int(pos * workers)
    return workers - 1 if k >= workers else k


def assign_bands(
    ids: Iterable[int], position_hash, workers: int
) -> dict[int, int]:
    """Shard id per node, from the epoch-0 position hash ``h(v, 0)``.

    ``h(v, 0)`` exists for every id (established or not), is uniform, and
    is known to every process, so joins can be assigned without
    coordination.
    """
    return {
        v: band_of(position_hash.position(v, 0), workers) for v in ids
    }


# ----------------------------------------------------------------------
# Shared-memory slab
# ----------------------------------------------------------------------


class ShardSlab:
    """One ``multiprocessing.shared_memory`` block backing NodeStore columns.

    Created by the master before forking; workers inherit the mapping
    through ``fork`` and write their band's rows in place.  The master owns
    the lifecycle (:meth:`close` unlinks the block via the tracked segment
    registry, so a leak is assertable with
    :func:`repro.util.arena.live_segments`).
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._shm = shmseg.create_segment(
            NodeStore.nbytes_for(capacity), "shard-nodestore"
        )
        self._closed = False

    def store(self) -> NodeStore:
        """A NodeStore whose columns are views into the shared block."""
        store = NodeStore(buffers=NodeStore.views_over(self._shm.buf, self.capacity))
        store.init_fixed_views()
        return store

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        shmseg.destroy_segment(self._shm)


# ----------------------------------------------------------------------
# Worker-side send log
# ----------------------------------------------------------------------


class _SendLog:
    """Network-API-compatible collector for one worker's compute phase.

    Tagged items reproduce the issue order per node; per-node marks give
    the master the item / plane-send boundaries it needs to splice the
    global stream in sorted node-id order.  Hop sends go through a local
    :class:`HopPlane` so the fused forwarding loops (which append straight
    into plane columns) run unchanged.
    """

    def __init__(self, plane_on: bool) -> None:
        self.items: list[tuple] = []
        self.marks: list[tuple[int, int, int]] = []  # (node, items_hi, plane_hi)
        self.plane = HopPlane() if plane_on else None

    # Network API used by NodeContext --------------------------------
    def send(self, src: int, dst: int, msg: object) -> None:
        self.items.append(("s", dst, msg))

    def send_singles_batch(self, src: int, items: list) -> None:
        if items:
            self.items.append(("b", items))

    def send_many(self, src: int, dsts, msg: object) -> None:
        dsts = tuple(dsts)
        if dsts:
            self.items.append(("m", dsts, msg))

    def send_many_batch(self, src: int, items: list) -> None:
        if items:
            self.items.append(("mb", items))

    def send_hops(self, src: int, msg: object, step: int, dsts) -> None:
        self.plane.send(src, msg, step, dsts)

    def send_hops_batch(self, src: int, items: list) -> None:
        self.plane.send_batch(src, items)

    def count_hop_sends(self, src: int, n: int) -> None:
        pass  # the master re-counts while splicing

    def mark(self, node: int) -> None:
        plane_hi = len(self.plane._srcs) if self.plane is not None else 0
        self.marks.append((node, len(self.items), plane_hi))

    def plane_pack(self):
        return self.plane.pack() if self.plane is not None else None


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------

_GATHER_SKIP = ("_epoch_cache", "_d_index", "hash")


def _export_state(proto) -> dict:
    """A node's picklable attribute snapshot (cache refs and callables out)."""
    out = {}
    for k, v in proto.__dict__.items():
        if k in _GATHER_SKIP or callable(v):
            continue
        out[k] = v
    return out


def _worker_main(
    engine: "Engine", band: int, conn, store: NodeStore, down_shm, up_shm
) -> None:
    """Persistent worker loop: owns one band of nodes, forked from master.

    The forked engine snapshot supplies protocols, rng streams, lifecycle
    and the epoch cache; from here on only the owned band's objects are
    touched, and the only channel back is the per-round uplink region
    (plus explicit gathers).  ``down_shm`` / ``up_shm`` are the inherited
    generation-0 slabs; the control message announces regrown generations,
    which the worker re-attaches by name.
    """
    from repro.sim.engine import NodeContext

    owned = {
        v
        for v, k in engine._shard_bands.items()
        if k == band and v in engine._protocols
    }
    # repro: allow(shard-master-state): fork-time snapshot read, before any
    # round — per-round join deltas arrive through the control message
    joined = {v: engine.lifecycle.joined_round(v) for v in owned}
    protocols = engine._protocols
    rngs = engine._rngs
    params = engine.params
    # repro: allow(shard-master-state): read-only feature flag captured at
    # fork — whether the hop plane exists never changes mid-run
    plane_on = engine.network.plane is not None
    # Per-shard compute timing reuses the profiler's injectable clock (no
    # direct wall-clock reads here); an unprofiled run measures nothing.
    clock = engine.profiler.clock if engine.profiler is not None else None
    ordered = sorted(owned)
    down_gen = 0
    up_gen = 0
    while True:
        cmd, payload = pickle.loads(conn.recv_bytes())
        if cmd == "stop":
            _worker_send(conn, ("bye", None))
            shmseg.close_segment(down_shm)
            shmseg.close_segment(up_shm)
            return
        if cmd == "gather":
            _worker_send(
                conn, ("state", {v: _export_state(protocols[v]) for v in ordered})
            )
            continue
        # cmd == "round"
        (
            t,
            d_gen,
            d_name,
            shared_desc,
            band_desc,
            u_gen,
            u_name,
            u_band_bytes,
        ) = payload
        if d_gen != down_gen:
            shmseg.close_segment(down_shm)
            down_shm = shmseg.attach_segment(d_name)
            down_gen = d_gen
        if u_gen != up_gen:
            shmseg.close_segment(up_shm)
            up_shm = shmseg.attach_segment(u_name)
            up_gen = u_gen
        dec = FrameDecoder(down_shm.buf)
        shared = exchange.decode_downlink_shared(down_shm.buf, dec, shared_desc)
        control, inboxes, hop_rows = exchange.decode_downlink_band(
            down_shm.buf, dec, band_desc
        )
        leaves, joins, stalled_ids, calls = control
        stalled = set(stalled_ids)
        t0 = clock() if clock is not None else 0.0
        for v in leaves:
            owned.discard(v)
            joined.pop(v, None)
            protocols.pop(v, None)
            rngs.pop(v, None)
        for v, jr, slot in joins:
            owned.add(v)
            joined[v] = jr
            protocols[v] = engine.protocol_factory(v, engine.services)
            rngs[v] = engine.rng_service.node_stream(v)
            store.adopt(v, slot)  # the master is the single slot allocator
        if leaves or joins:
            ordered = sorted(owned)
        for v, name, args in calls:
            getattr(protocols[v], name)(*args)
        if engine.services.epoch_cache is not None:
            engine.services.epoch_cache.begin_round(t)
        delivery = None
        if shared is not None:
            msgs, steps = shared
            delivery = HopDelivery(msgs, steps, hop_rows, {}, total=0)
        log = _SendLog(plane_on)
        for v in ordered:
            if v in stalled:
                continue
            ctx = NodeContext(
                node_id=v,
                t=t,
                inbox=inboxes.get(v, []),
                rng=rngs[v],
                params=params,
                joined_round=joined[v],
                network=log,
                hops=hop_rows.get(v) if delivery is not None else None,
                hop_delivery=delivery,
            )
            proto = protocols[v]
            proto.on_round(ctx)
            log.mark(v)
        if _SANITIZE:
            _assert_band_owned(engine, band, ordered)
        for v in ordered:
            protocols[v].publish_state(store, store.slot_of(v))
        secs = (clock() - t0) if clock is not None else 0.0
        up_arena = ByteArena(
            up_shm.buf, band * u_band_bytes, u_band_bytes
        )
        up_enc = FrameEncoder(up_arena)
        try:
            desc = exchange.encode_uplink(
                up_arena, up_enc, log.items, log.marks, log.plane_pack()
            )
            _worker_send(conn, ("sends", (desc, secs)))
        except ArenaFull as exc:
            # This round travels the pipe; the master regrows the uplink
            # slab before the next control message.
            _worker_send(
                conn,
                (
                    "sends_pipe",
                    (log.items, log.marks, log.plane_pack(), secs, exc.needed),
                ),
            )


# ----------------------------------------------------------------------
# Master-side runner
# ----------------------------------------------------------------------


class ShardRunner:
    """Master-side coordinator of the sharded compute phase."""

    def __init__(self, engine: "Engine", workers: int) -> None:
        if workers < 2:
            raise ValueError("ShardRunner needs workers >= 2")
        self.engine = engine
        self.workers = workers
        self._canon: dict[object, tuple[RoutedMessage, int]] = {}
        self._canon_ttl = 2 * engine.params.lam + 6
        self.last_shard_seconds: tuple[float, ...] = ()
        #: Cumulative exchange byte counters (always on: integer adds only).
        self.stats = exchange.ExchangeStats()
        #: ``(pipe, shm)`` bytes of the most recent round, for PhaseTimings.
        self.last_round_bytes: tuple[int, int] = (0, 0)
        # Band map for every currently known node; joins are added as the
        # adversary creates them.
        alive = sorted(engine.alive)
        engine._shard_bands = assign_bands(
            alive, engine.services.position_hash, workers
        )
        # Re-home the scalar store into a shared slab, band-contiguous:
        # band k's rows form one slice of the columns.
        self._slab = ShardSlab(capacity=4 * max(len(alive), 16) + 256)
        store = self._slab.store()
        for k in range(workers):
            for v in (u for u in alive if engine._shard_bands[u] == k):
                store.ensure(v)
        for v in alive:
            engine._protocols[v].publish_state(store, store.slot_of(v))
        engine.node_store = store
        # Exchange slabs: one master-written downlink arena, one uplink slab
        # in W equal worker regions.  Workers inherit generation 0 via fork.
        self._down_gen = 0
        self._down_shm = shmseg.create_segment(
            exchange.DOWN_MIN_BYTES, "shard-downlink"
        )
        self._down_arena = ByteArena(self._down_shm.buf)
        self._down_enc = FrameEncoder(self._down_arena)
        self._up_gen = 0
        self._up_band_bytes = exchange.UP_BAND_MIN_BYTES
        self._up_shm = shmseg.create_segment(
            workers * self._up_band_bytes, "shard-uplink"
        )
        self._up_grow_to = 0  # pending per-band regrow request (bytes)
        ctx = multiprocessing.get_context("fork")
        self._conns = []
        self._procs = []
        for k in range(workers):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(engine, k, child, store, self._down_shm, self._up_shm),
                daemon=True,
            )
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)
        self._closed = False
        atexit.register(self.close)

    # ------------------------------------------------------------------
    # Control plane (every pipe byte is counted)
    # ------------------------------------------------------------------

    def _send_obj(self, conn, obj: object) -> None:
        if _SANITIZE:
            _assert_codec_safe(obj)
        blob = _dumps(obj)
        self.stats.bytes_pipe += len(blob)
        conn.send_bytes(blob)

    def _recv_obj(self, conn) -> object:
        blob = conn.recv_bytes()
        self.stats.bytes_pipe += len(blob)
        return pickle.loads(blob)

    # ------------------------------------------------------------------
    # Round execution
    # ------------------------------------------------------------------

    def band(self, v: int) -> int:
        bands = self.engine._shard_bands
        k = bands.get(v)
        if k is None:
            k = bands[v] = band_of(
                self.engine.services.position_hash.position(v, 0), self.workers
            )
        return k

    def run_compute(
        self,
        t: int,
        decision,
        inboxes: dict,
        hop_delivery,
        ordered: list[int],
    ) -> None:
        """Dispatch one compute phase to the workers and splice the sends."""
        engine = self.engine
        faults = engine.faults
        pipe0, shm0 = self.stats.bytes_pipe, self.stats.bytes_shm
        # Stall draws happen master-side, for every alive node in the same
        # order as the reference loop (FaultInjector counts them).
        stalled: set[int] = set()
        if faults is not None:
            for v in ordered:
                if faults.stalled(t, v):
                    stalled.add(v)
        per: list[dict] = [
            {"leaves": [], "joins": [], "stalled": set(), "calls": [], "inboxes": {}}
            for _ in range(self.workers)
        ]
        for v in decision.leaves:
            k = self.band(v)
            per[k]["leaves"].append(v)
            engine._shard_bands.pop(v, None)
        for j in decision.joins:
            # The engine's adversary phase already spawned the master-side
            # snapshot and allocated the store slot; ship both to the owner.
            k = self.band(j.new_id)
            per[k]["joins"].append(
                (
                    j.new_id,
                    engine.lifecycle.joined_round(j.new_id),
                    engine.node_store.slot_of(j.new_id),
                )
            )
        for v in stalled:
            per[self.band(v)]["stalled"].add(v)
        for v, name, args in engine._pending_node_calls:
            per[self.band(v)]["calls"].append((v, name, args))
        engine._pending_node_calls = []
        for v, inbox in inboxes.items():
            per[self.band(v)]["inboxes"][v] = inbox
        by_band: list[dict] | None = None
        if hop_delivery is not None:
            by_band = [{} for _ in range(self.workers)]
            for v, rows in hop_delivery.rows.items():
                by_band[self.band(v)][v] = rows
        # Encode the downlink; on overflow regrow the slab and re-encode
        # from scratch (the encoder memo only holds offsets of the current
        # arena extent).
        while True:
            self._down_arena.reset()
            self._down_enc.reset()
            try:
                shared_desc = exchange.encode_downlink_shared(
                    self._down_arena, self._down_enc, hop_delivery
                )
                band_descs = []
                for k in range(self.workers):
                    p = per[k]
                    control = (
                        p["leaves"],
                        p["joins"],
                        tuple(sorted(p["stalled"])),
                        p["calls"],
                    )
                    band_descs.append(
                        exchange.encode_downlink_band(
                            self._down_arena,
                            self._down_enc,
                            control,
                            p["inboxes"],
                            by_band[k] if by_band is not None else None,
                        )
                    )
                break
            except ArenaFull as exc:
                self._grow_down(exc.needed)
        self.stats.bytes_shm += self._down_arena.used
        # Apply an uplink regrow requested by last round's overflow before
        # announcing this round (workers switch on the gen bump).
        if self._up_grow_to:
            self._grow_up(self._up_grow_to)
            self._up_grow_to = 0
        for k, conn in enumerate(self._conns):
            self._send_obj(
                conn,
                (
                    "round",
                    (
                        t,
                        self._down_gen,
                        self._down_shm.name,
                        shared_desc,
                        band_descs[k],
                        self._up_gen,
                        self._up_shm.name,
                        self._up_band_bytes,
                    ),
                ),
            )
        results = []
        up_dec = FrameDecoder(self._up_shm.buf)
        need_up = 0
        for conn in self._conns:
            kind, payload = self._recv_obj(conn)
            if kind == "sends":
                desc, secs = payload
                items, marks, plane_pack = exchange.decode_uplink(
                    self._up_shm.buf, up_dec, desc
                )
                self.stats.bytes_shm += desc[-1]
                results.append((items, marks, plane_pack, secs))
            else:
                assert kind == "sends_pipe"
                items, marks, plane_pack, secs, need = payload
                self.stats.fallback_rounds += 1
                need_up = max(need_up, need)
                results.append((items, marks, plane_pack, secs))
        if need_up:
            self._up_grow_to = max(2 * self._up_band_bytes, 2 * need_up)
        self.stats.rounds += 1
        self.last_round_bytes = (
            self.stats.bytes_pipe - pipe0,
            self.stats.bytes_shm - shm0,
        )
        self.last_shard_seconds = tuple(r[3] for r in results)
        self._splice(t, ordered, stalled, results)
        self._prune_canon(t)
        engine._gathered_round = -1  # master protocol snapshots are stale now

    def _grow_down(self, needed: int) -> None:
        """Swap in a doubled downlink generation (old block is unlinked;
        workers keep valid mappings until they see the gen bump)."""
        old = self._down_shm
        new_size = max(2 * old.size, 1 << max(int(needed) - 1, 1).bit_length())
        self._down_shm = shmseg.create_segment(new_size, "shard-downlink")
        self._down_gen += 1
        self._down_arena = ByteArena(self._down_shm.buf)
        self._down_enc = FrameEncoder(self._down_arena)
        shmseg.destroy_segment(old)
        self.stats.regrows_down += 1

    def _grow_up(self, band_bytes: int) -> None:
        """Reallocate the uplink slab with ``band_bytes`` per worker region."""
        old = self._up_shm
        self._up_band_bytes = band_bytes
        self._up_shm = shmseg.create_segment(
            self.workers * band_bytes, "shard-uplink"
        )
        self._up_gen += 1
        shmseg.destroy_segment(old)
        self.stats.regrows_up += 1

    def _canon_msg(self, msg: RoutedMessage, t: int) -> RoutedMessage:
        entry = self._canon.get(msg.msg_id)
        if entry is None:
            self._canon[msg.msg_id] = (msg, t)
            return msg
        canon, _ = entry
        self._canon[msg.msg_id] = (canon, t)
        return canon

    def _canon_payload(self, msg: object, t: int) -> object:
        """Re-canonicalise routed content so identity-dedup sees one object."""
        if isinstance(msg, Hop):
            canon = self._canon_msg(msg.msg, t)
            return msg if canon is msg.msg else Hop(canon, msg.step)
        if isinstance(msg, RoutedMessage):
            return self._canon_msg(msg, t)
        return msg

    def _prune_canon(self, t: int) -> None:
        if t % 8:
            return
        horizon = t - self._canon_ttl
        stale = [k for k, (_, touched) in self._canon.items() if touched < horizon]
        for k in stale:
            del self._canon[k]

    def _splice(
        self, t: int, ordered: list[int], stalled: set[int], results: list
    ) -> None:
        """Replay per-node send segments into the master network, in global
        sorted node-id order (the reference engine's observable order)."""
        net = self.engine.network
        cursors = [0] * self.workers
        item_lo = [0] * self.workers
        plane_lo = [0] * self.workers
        flat_offs: list[list[int]] = []
        for items, marks, plane_pack, _secs in results:
            if plane_pack is not None:
                lens = plane_pack[3]
                flat_offs.append(list(accumulate(lens, initial=0)))
            else:
                flat_offs.append([0])
        for v in ordered:
            if v in stalled:
                continue
            k = self.band(v)
            items, marks, plane_pack, _secs = results[k]
            node, items_hi, plane_hi = marks[cursors[k]]
            assert node == v, f"shard stream misaligned: {node} != {v}"
            cursors[k] += 1
            for item in items[item_lo[k]:items_hi]:
                tag = item[0]
                if tag == "s":
                    net.send(v, item[1], self._canon_payload(item[2], t))
                elif tag == "b":
                    net.send_singles_batch(
                        v,
                        [(d, self._canon_payload(m, t)) for d, m in item[1]],
                    )
                elif tag == "m":
                    net.send_many(v, item[1], self._canon_payload(item[2], t))
                else:  # "mb"
                    net.send_many_batch(
                        v,
                        [(d, self._canon_payload(m, t)) for d, m in item[1]],
                    )
            item_lo[k] = items_hi
            if plane_pack is not None and plane_hi > plane_lo[k]:
                msgs, steps, rows, lens, flat = plane_pack
                offs = flat_offs[k]
                for i in range(plane_lo[k], plane_hi):
                    row = rows[i]
                    net.send_hops(
                        v,
                        self._canon_msg(msgs[row], t),
                        steps[row],
                        flat[offs[i]:offs[i + 1]],
                    )
                plane_lo[k] = plane_hi

    # ------------------------------------------------------------------
    # Gather and lifecycle
    # ------------------------------------------------------------------

    def sync_protocols(self) -> None:
        """Refresh the master's protocol snapshots from the owning workers."""
        for conn in self._conns:
            self._send_obj(conn, ("gather", None))
        for conn in self._conns:
            kind, states = self._recv_obj(conn)
            assert kind == "state"
            for v, state in states.items():
                proto = self.engine._protocols.get(v)
                if proto is None:
                    continue
                proto.__dict__.update(state)
                proto._d_index = None

    def forward_call(self, v: int, name: str, args: tuple) -> None:
        self.engine._pending_node_calls.append((v, name, args))

    def close(self) -> None:
        """Stop the workers and release every shared segment.

        Slab teardown sits in a ``finally``: a worker that died mid-run
        (broken pipe on the stop message, a failed join) must not leave
        ``/dev/shm`` blocks behind — the segment registry is asserted
        empty by the shard-smoke CI job.
        """
        if self._closed:
            return
        self._closed = True
        try:
            for conn in self._conns:
                try:
                    self._send_obj(conn, ("stop", None))
                except (BrokenPipeError, OSError):
                    pass
            for proc in self._procs:
                proc.join(timeout=2)
                if proc.is_alive():  # pragma: no cover
                    proc.terminate()
            for conn in self._conns:
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
        finally:
            self._privatize_store()
            self._down_arena = None
            self._down_enc = None
            shmseg.destroy_segment(self._down_shm)
            shmseg.destroy_segment(self._up_shm)
            self._slab.close()

    def _privatize_store(self) -> None:
        """Copy the shared columns into private memory and drop the views.

        The slab cannot unmap while NumPy views over it are alive, so the
        engine's store is swapped for a private copy first — state reads
        keep working after :meth:`close`.
        """
        shared = self.engine.node_store
        if shared is None or not shared._fixed:
            return
        priv = NodeStore(capacity=shared.capacity)
        priv.phase[:] = shared.phase
        priv.epoch[:] = shared.epoch
        priv.pos[:] = shared.pos
        priv._slot_of = dict(shared._slot_of)
        priv._ids = list(shared._ids)
        self.engine.node_store = priv
        shared.phase = shared.epoch = shared.pos = None
