"""Per-phase wall-time profiling of engine rounds.

A :class:`PhaseProfiler` attached to the :class:`~repro.sim.engine.Engine`
times the four stages of every synchronous round — the adversary phase
(churn decision, validation and application), the receive phase (message
delivery), the compute phase (every node's protocol step) and the close
phase (freezing ``E_t`` and recording the trace).  The timings land both in
the profiler's own history and on the round's
:class:`~repro.sim.metrics.RoundMetrics`, so congestion and wall-time can be
correlated round by round.

The engine consults the profiler through ``if profiler is not None`` guards
only — a detached run executes no timing code at all, which keeps the
default path at zero overhead (the acceptance benchmarks run detached).

``clock`` is injectable for deterministic tests; it defaults to
:func:`time.perf_counter`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

__all__ = ["PHASES", "PhaseTimings", "PhaseProfiler"]

#: The engine's phase names, in execution order.
PHASES = ("adversary", "receive", "compute", "close")


@dataclass(frozen=True)
class PhaseTimings:
    """Wall-time (seconds) spent in each engine phase of one round.

    ``shards`` is non-empty only on sharded runs (``workers > 1``): one
    entry per shard worker, the wall-time that worker spent computing its
    band this round.  The ``compute`` figure is the master-side phase time
    (dispatch + worker wait + splice), so ``max(shards)`` vs ``compute``
    separates worker imbalance from serialisation overhead.

    ``exchange_bytes_pipe`` / ``exchange_bytes_shm`` split the round's
    shard-exchange traffic between the pickled control plane and the
    shared-memory slabs (:mod:`repro.sim.exchange`); both are zero on
    single-process rounds.
    """

    adversary: float
    receive: float
    compute: float
    close: float
    shards: tuple[float, ...] = ()
    exchange_bytes_pipe: int = 0
    exchange_bytes_shm: int = 0

    @property
    def total(self) -> float:
        """Wall-time of the whole round (sum of the four phases)."""
        return self.adversary + self.receive + self.compute + self.close

    def as_dict(self) -> dict[str, float]:
        out = {name: getattr(self, name) for name in PHASES}
        if self.shards:
            out["shards"] = list(self.shards)
        if self.exchange_bytes_pipe or self.exchange_bytes_shm:
            out["exchange_bytes_pipe"] = self.exchange_bytes_pipe
            out["exchange_bytes_shm"] = self.exchange_bytes_shm
        return out


class PhaseProfiler:
    """Accumulates per-round :class:`PhaseTimings` for an engine run."""

    __slots__ = ("clock", "history")

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self.history: list[PhaseTimings] = []

    def record(
        self,
        adversary: float,
        receive: float,
        compute: float,
        close: float,
        shards: tuple[float, ...] = (),
        exchange_bytes_pipe: int = 0,
        exchange_bytes_shm: int = 0,
    ) -> PhaseTimings:
        """File one round's phase durations; returns the frozen record."""
        timings = PhaseTimings(
            adversary,
            receive,
            compute,
            close,
            shards,
            exchange_bytes_pipe,
            exchange_bytes_shm,
        )
        self.history.append(timings)
        return timings

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------

    @property
    def rounds(self) -> int:
        return len(self.history)

    def totals(self) -> dict[str, float]:
        """Cumulative seconds per phase over all recorded rounds."""
        return {
            name: sum(getattr(t, name) for t in self.history) for name in PHASES
        }

    def total_time(self) -> float:
        """Cumulative wall-time over all rounds and phases."""
        return sum(t.total for t in self.history)

    def exchange_totals(self) -> tuple[int, int]:
        """Cumulative ``(pipe, shm)`` shard-exchange bytes over all rounds."""
        pipe = sum(t.exchange_bytes_pipe for t in self.history)
        shm = sum(t.exchange_bytes_shm for t in self.history)
        return pipe, shm

    def mean_per_round(self) -> dict[str, float]:
        """Mean seconds per phase per round (all-zero when no rounds ran)."""
        n = len(self.history)
        if n == 0:
            return {name: 0.0 for name in PHASES}
        totals = self.totals()
        return {name: totals[name] / n for name in PHASES}

    def table(self) -> str:
        """The hot-path table: phases sorted by cumulative time, descending."""
        totals = self.totals()
        grand = self.total_time()
        n = max(1, len(self.history))
        lines = [
            f"{'phase':<10} {'total s':>10} {'ms/round':>10} {'share':>7}",
        ]
        for name in sorted(PHASES, key=lambda p: totals[p], reverse=True):
            seconds = totals[name]
            share = seconds / grand if grand > 0 else 0.0
            lines.append(
                f"{name:<10} {seconds:>10.3f} {seconds / n * 1e3:>10.2f} "
                f"{share:>6.1%}"
            )
        lines.append(
            f"{'all':<10} {grand:>10.3f} {grand / n * 1e3:>10.2f} "
            f"{1.0 if grand > 0 else 0.0:>6.1%}"
        )
        return "\n".join(lines)
