"""Synchronous-round simulation substrate: engine, network, trace, metrics."""

from repro.sim.engine import (
    Engine,
    EngineServices,
    JoinNotice,
    NodeContext,
    NodeProtocol,
    RoundReport,
)
from repro.sim.identity import Lifecycle, NodeRecord
from repro.sim.metrics import MetricsCollector, RoundMetrics
from repro.sim.network import Inbox, Network
from repro.sim.profile import PhaseProfiler, PhaseTimings
from repro.sim.trace import GraphTrace

__all__ = [
    "Engine",
    "EngineServices",
    "GraphTrace",
    "Inbox",
    "JoinNotice",
    "Lifecycle",
    "MetricsCollector",
    "Network",
    "NodeContext",
    "NodeProtocol",
    "NodeRecord",
    "PhaseProfiler",
    "PhaseTimings",
    "RoundMetrics",
    "RoundReport",
]
