"""Synchronous-round simulation substrate: engine, network, trace, metrics."""

from repro.sim.engine import (
    Engine,
    EngineServices,
    JoinNotice,
    NodeContext,
    NodeProtocol,
    RoundReport,
)
from repro.sim.identity import Lifecycle, NodeRecord
from repro.sim.metrics import FaultRoundStats, MetricsCollector, RoundMetrics
from repro.sim.network import EdgeLog, FaultHook, Inbox, Network
from repro.sim.profile import PHASES, PhaseProfiler, PhaseTimings
from repro.sim.trace import GraphTrace

__all__ = [
    "EdgeLog",
    "Engine",
    "EngineServices",
    "FaultHook",
    "FaultRoundStats",
    "GraphTrace",
    "Inbox",
    "JoinNotice",
    "Lifecycle",
    "MetricsCollector",
    "Network",
    "NodeContext",
    "NodeProtocol",
    "NodeRecord",
    "PHASES",
    "PhaseProfiler",
    "PhaseTimings",
    "RoundMetrics",
    "RoundReport",
]
