"""Message transport with the paper's delivery semantics.

* A message sent in round ``t`` is received at the start of round ``t+1`` —
  if and only if the receiver is still in the network (churned-out nodes
  "do not receive any messages and leave immediately", while messages *they*
  sent in ``t-1`` are still delivered).
* Sending a message implicitly creates the directed edge ``(src, dst)`` in
  ``G_t``; the per-round edge sets are what the ``a``-late adversary observes.

The round boundary is split in two to honour these semantics:
``close_send_phase`` (end of round ``t``) freezes ``E_t`` while the messages
stay pending; ``deliver`` (start of round ``t+1``, *after* churn is applied)
hands each surviving receiver its inbox.

Multicasts (one payload to many receivers) are first-class: the payload object
is shared, not copied, which keeps the ``O(log^3 n)``-messages-per-node
protocol affordable in pure Python while message/edge counts stay exact.

**Hot path.**  ``send_many`` and ``deliver`` dominate large simulations, so
both avoid per-element Python churn: NumPy id arrays are coerced via a single
C-level ``tolist`` instead of a per-id generator, delivery shares one
``(sender, payload)`` pair across all receivers of a multicast, and
``has_pending`` reads a running counter instead of scanning the buckets.

**Fault hook.**  An optional :attr:`Network.fault_hook` (duck-typed to
:class:`repro.faults.injector.FaultInjector`) is consulted once per frozen
receiver at ``close_send_phase``: it returns the message's *fates* — a tuple
of delivery latencies in rounds (``(1,)`` = normal, ``()`` = dropped,
``(1+k,)`` = delayed, extra entries = duplicates).  The pending queue is a
set of latency buckets, so delayed copies simply sit in a higher bucket
until their round comes; churn is still checked at delivery time, so a node
that leaves while a delayed message is in flight never receives it.  Edges
are frozen *before* the hook runs — a dropped message still created its
edge (the adversary observes send attempts, the environment eats payloads).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Protocol, Sequence

import numpy as np

from repro.sim.hopplane import FrozenHopRound, HopDelivery, HopPlane

__all__ = ["Network", "Inbox", "FaultHook", "EdgeLog"]

# An inbox is a list of (sender id, message object) pairs.
Inbox = list[tuple[int, object]]

#: Receiver-slot sentinel marking a batched-singles entry in the frozen send
#: list: ``(src, _BATCH, items)`` stands for one ``(src, dst, msg)`` triple
#: per ``(dst, msg)`` in ``items``, *in place* — expansion at delivery/edge
#: time keeps global send order (and therefore inbox and edge order) exactly
#: as if each single had been appended individually.
_BATCH = object()


class FaultHook(Protocol):  # pragma: no cover - typing aid only
    """What the network needs from a fault injector."""

    @property
    def message_faults_active(self) -> bool: ...

    def message_fates(self, t: int, src: int, dst: int) -> tuple[int, ...]: ...


class EdgeLog:
    """The edge set ``E_t`` of one round, materialized lazily.

    ``close_send_phase`` hands the frozen send lists to this wrapper instead
    of expanding every multicast into ``(src, dst)`` tuples eagerly — in runs
    without an adversary, health monitor, or trace query the expansion never
    happens at all.  Behaves like a read-only list of ``(src, dst)`` pairs.

    :meth:`compact` collapses the log into two machine-int id arrays, which
    drops every payload/receiver-tuple reference the frozen send lists were
    keeping alive.  The graph trace compacts each round it records — without
    that, one retained round of multicast tuples and batch payloads costs
    tens of MB at n=512, multiplied by the trace depth.
    """

    __slots__ = ("_singles", "_multis", "_hops", "_flat", "_srcs", "_dsts")

    def __init__(
        self,
        singles: list[tuple[int, int, object]],
        multis: list[tuple[int, Sequence[int], object]],
        hops: FrozenHopRound | None = None,
    ) -> None:
        self._singles: list | None = singles
        self._multis: list | None = multis
        self._hops: FrozenHopRound | None = hops
        self._flat: list[tuple[int, int]] | None = None
        self._srcs: np.ndarray | None = None
        self._dsts: np.ndarray | None = None

    def compact(self) -> None:
        """Collapse to ``(srcs, dsts)`` int32 arrays, freeing payload refs."""
        if self._srcs is not None:
            return
        if self._flat is not None:
            flat = self._flat
            arr = np.array(flat, dtype=np.int32).reshape(len(flat), 2)
            self._srcs = np.ascontiguousarray(arr[:, 0])
            self._dsts = np.ascontiguousarray(arr[:, 1])
            self._flat = None
            return
        src_parts: list[np.ndarray] = []
        dst_parts: list[np.ndarray] = []
        singles = self._singles
        if singles:
            s_ids: list[int] = []
            d_ids: list[int] = []
            for s, d, m in singles:
                if d is _BATCH:
                    s_ids.extend([s] * len(m))
                    d_ids.extend([dst for dst, _ in m])
                else:
                    s_ids.append(s)
                    d_ids.append(d)
            src_parts.append(np.array(s_ids, dtype=np.int32))
            dst_parts.append(np.array(d_ids, dtype=np.int32))
        multis = self._multis
        if multis:
            k = len(multis)
            src_parts.append(
                np.repeat(
                    np.fromiter((s for s, _, _ in multis), np.int32, k),
                    np.fromiter((len(d) for _, d, _ in multis), np.int64, k),
                )
            )
            mflat: list[int] = []
            for _, dsts, _ in multis:
                mflat.extend(dsts)
            dst_parts.append(np.array(mflat, dtype=np.int32))
        if self._hops is not None:
            hsrcs, hdsts = self._hops.edge_columns()
            src_parts.append(np.asarray(hsrcs, dtype=np.int32))
            dst_parts.append(np.asarray(hdsts, dtype=np.int32))
        if src_parts:
            self._srcs = np.concatenate(src_parts)
            self._dsts = np.concatenate(dst_parts)
        else:
            self._srcs = np.empty(0, dtype=np.int32)
            self._dsts = np.empty(0, dtype=np.int32)
        self._singles = None  # drop payload references
        self._multis = None
        self._hops = None

    def _materialize(self) -> list[tuple[int, int]]:
        if self._srcs is not None:
            # Compacted: rebuild pairs on demand, never cache them (the whole
            # point is not holding tuple objects for the trace's lifetime).
            return list(zip(self._srcs.tolist(), self._dsts.tolist()))
        flat = self._flat
        if flat is None:
            flat = []
            for src, dst, m in self._singles:
                if dst is _BATCH:
                    flat.extend((src, d2) for d2, _ in m)
                else:
                    flat.append((src, dst))
            for src, dsts, _ in self._multis:
                flat.extend((src, dst) for dst in dsts)
            if self._hops is not None:
                flat.extend(self._hops.iter_edges())
            self._flat = flat
            self._singles = None  # drop payload references
            self._multis = None
            self._hops = None
        return flat

    def __iter__(self):
        if self._srcs is not None:
            return zip(self._srcs.tolist(), self._dsts.tolist())
        return iter(self._materialize())

    def __len__(self) -> int:
        if self._srcs is not None:
            return int(self._srcs.size)
        return len(self._materialize())

    def __getitem__(self, i):
        return self._materialize()[i]

    def __contains__(self, edge) -> bool:
        return edge in self._materialize()

    def __eq__(self, other) -> bool:
        if isinstance(other, EdgeLog):
            return self._materialize() == other._materialize()
        return self._materialize() == other

    def __repr__(self) -> str:
        return f"EdgeLog({self._materialize()!r})"


class Network:
    """Collects sends during a round and delivers them the next round(s)."""

    def __init__(self) -> None:
        self._sending: list[tuple[int, int, object]] = []
        self._sending_multi: list[tuple[int, tuple[int, ...], object]] = []
        # Pending queues, bucketed by delivery countdown: bucket ``k`` is
        # delivered at the ``k``-th next ``deliver`` call (normal traffic
        # lives in bucket 1; only faults populate higher buckets).
        self._pending: dict[int, list[tuple[int, int, object]]] = {}
        self._pending_multi: dict[int, list[tuple[int, Sequence[int], object]]] = {}
        self._sent_counts: defaultdict[int, int] = defaultdict(int)
        # Running count of undelivered receiver-copies across the sending
        # lists and every bucket; ``has_pending`` is O(1) because of it.
        self._pending_count = 0
        #: Optional fault injector (see module docstring); ``None`` = the
        #: paper's perfectly reliable synchronous network.
        self.fault_hook: FaultHook | None = None
        #: Optional columnar transport for routed hops (mounted by the engine
        #: in fault-free runs; see :mod:`repro.sim.hopplane`).  When present,
        #: protocols send hops via :meth:`send_hops` and receive them as
        #: shared row arrays (:attr:`hop_delivery`) instead of inbox objects.
        self.plane: HopPlane | None = None
        self._pending_hops: FrozenHopRound | None = None
        #: The hop arrivals of the latest :meth:`deliver` call (or ``None``).
        self.hop_delivery: HopDelivery | None = None
        self._round = 0  # rounds closed so far (the ``t`` passed to the hook)

    # ------------------------------------------------------------------
    # Sending (called by nodes during their compute phase)
    # ------------------------------------------------------------------

    def send(self, src: int, dst: int, msg: object) -> None:
        """Send one message; creates edge ``(src, dst)`` this round."""
        self._sending.append((src, int(dst), msg))
        self._sent_counts[src] += 1
        self._pending_count += 1

    def send_singles_batch(
        self, src: int, items: list[tuple[int, object]]
    ) -> None:
        """File many single-receiver sends from one sender in one call.

        Equivalent to :meth:`send` per ``(dst, msg)`` item in order;
        receivers must already be plain ints.  The matchmaking and join-
        rebroadcast paths send one *distinct* payload per receiver — tens of
        thousands of singles per round at scale — so the per-call counter
        updates are worth folding away.
        """
        if not items:
            return
        self._sending.append((src, _BATCH, items))
        self._sent_counts[src] += len(items)
        self._pending_count += len(items)

    def send_many(
        self, src: int, dsts: Sequence[int] | Iterable[int], msg: object
    ) -> None:
        """Multicast the same payload to several receivers (one edge each).

        ``dsts`` may be any iterable, including a NumPy id array; receiver
        ids are coerced to plain ``int`` exactly like :meth:`send` so trace
        edges and inbox keys stay type-consistent across both paths.  The
        NumPy case converts in one C call (``tolist``) — this is the hottest
        line of the whole simulator.
        """
        if isinstance(dsts, np.ndarray):
            dsts = tuple(dsts.tolist())
        else:
            dsts = tuple(map(int, dsts))
        if not dsts:
            return
        self._sending_multi.append((src, dsts, msg))
        self._sent_counts[src] += len(dsts)
        self._pending_count += len(dsts)

    def send_many_batch(
        self, src: int, items: list[tuple[tuple[int, ...], object]]
    ) -> None:
        """File many multicasts from one sender in one call.

        ``items`` holds ``(receivers, payload)`` pairs whose receivers are
        already plain-``int`` tuples (the batched node hot paths produce
        exactly that).  Equivalent to calling :meth:`send_many` per item in
        order, minus 2 dict updates and an isinstance probe per call — the
        forwarding loops issue one multicast per held hop, so per-call
        overhead is the dominant cost at scale.
        """
        sending = self._sending_multi
        total = 0
        for dsts, msg in items:
            if dsts:
                sending.append((src, dsts, msg))
                total += len(dsts)
        self._sent_counts[src] += total
        self._pending_count += total

    def send_hops(
        self, src: int, msg: object, step: int, dsts: Sequence[int]
    ) -> None:
        """Multicast one routed hop through the columnar plane.

        Counts copies exactly like :meth:`send_many` (edges, congestion and
        ``has_pending`` stay consistent across both transports); requires a
        mounted :attr:`plane`.
        """
        n = self.plane.send(src, msg, step, dsts)
        if n:
            self._sent_counts[src] += n
            self._pending_count += n

    def send_hops_batch(
        self, src: int, items: list[tuple[object, int, Sequence[int]]]
    ) -> None:
        """File many hop multicasts from one sender through the plane."""
        n = self.plane.send_batch(src, items)
        if n:
            self._sent_counts[src] += n
            self._pending_count += n

    def count_hop_sends(self, src: int, n: int) -> None:
        """Account ``n`` copies a fused loop filed directly into the plane
        (via :meth:`HopPlane.columns`)."""
        if n:
            self._sent_counts[src] += n
            self._pending_count += n

    @property
    def has_pending(self) -> bool:
        """Whether any messages are awaiting delivery (any bucket)."""
        return self._pending_count > 0

    # ------------------------------------------------------------------
    # Round boundary (called by the engine)
    # ------------------------------------------------------------------

    def close_send_phase(self) -> tuple[EdgeLog, dict[int, int]]:
        """Freeze this round's sends: returns ``(E_t, sent_counts)``.

        ``E_t`` is a lazily-expanded :class:`EdgeLog` over the frozen send
        lists.  The messages move to the pending buckets for later delivery;
        the fault hook (if any) assigns each receiver its fates here.
        """
        hop_round = self.plane.close_round() if self.plane is not None else None
        edges = EdgeLog(self._sending, self._sending_multi, hop_round)
        if hop_round is not None:
            if self._pending_hops is not None:  # pragma: no cover - engine bug
                raise RuntimeError("hop round closed before previous delivery")
            self._pending_hops = hop_round
        sent = dict(self._sent_counts)
        hook = self.fault_hook
        if hook is None or not hook.message_faults_active:
            self._pending.setdefault(1, []).extend(self._sending)
            self._pending_multi.setdefault(1, []).extend(self._sending_multi)
        else:
            self._apply_faults(hook)
        self._sending = []
        self._sending_multi = []
        self._sent_counts = defaultdict(int)
        self._round += 1
        return edges, sent

    def _apply_faults(self, hook: FaultHook) -> None:
        """File each frozen message into its fate buckets."""
        t = self._round
        pending = self._pending
        pending_multi = self._pending_multi
        count = 0
        singles_frozen = 0
        for src, dst, msg in self._sending:
            if dst is _BATCH:
                # Expand in place: each batched single gets its own fates and
                # lands in the buckets as a plain triple, preserving order.
                singles_frozen += len(msg)
                for d2, m2 in msg:
                    for latency in hook.message_fates(t, src, d2):
                        pending.setdefault(latency, []).append((src, d2, m2))
                        count += 1
                continue
            singles_frozen += 1
            for latency in hook.message_fates(t, src, dst):
                pending.setdefault(latency, []).append((src, dst, msg))
                count += 1
        for src, dsts, msg in self._sending_multi:
            # Group surviving receivers by latency so the shared-payload
            # multicast structure (and in-bucket receiver order) is kept;
            # an undisturbed multicast stays one entry in bucket 1.
            groups: dict[int, list[int]] = {}
            for dst in dsts:
                for latency in hook.message_fates(t, src, dst):
                    groups.setdefault(latency, []).append(dst)
            for latency, group in groups.items():
                pending_multi.setdefault(latency, []).append((src, group, msg))
                count += len(group)
        # Drops and duplicates change the copy count; re-base the counter on
        # what actually reached the buckets this round.
        self._pending_count += count - (
            singles_frozen + sum(len(d) for _, d, _ in self._sending_multi)
        )

    def deliver(
        self, alive: frozenset[int] | set[int]
    ) -> tuple[dict[int, Inbox], dict[int, int]]:
        """Deliver due pending messages to surviving receivers.

        Returns ``(inboxes, received_counts)``.  Must be called after the
        round's churn has been applied so that churned-out nodes receive
        nothing.  Higher buckets shift down one step per call.

        Receivers are grouped without per-message tuple churn: all copies of
        one multicast share a single ``(sender, payload)`` pair, and the
        no-fault fast path (everything in bucket 1) skips the bucket shift.
        """
        due = self._pending.pop(1, [])
        due_multi = self._pending_multi.pop(1, [])
        if self._pending:
            self._pending = {k - 1: v for k, v in self._pending.items()}
        if self._pending_multi:
            self._pending_multi = {k - 1: v for k, v in self._pending_multi.items()}
        inboxes: defaultdict[int, Inbox] = defaultdict(list)
        inbox_of = inboxes.__getitem__
        delivered = len(due)
        for src, dst, msg in due:
            if dst is _BATCH:
                items = msg
                delivered += len(items) - 1
                for d2, m2 in items:
                    if d2 in alive:
                        inbox_of(d2).append((src, m2))
            elif dst in alive:
                inbox_of(dst).append((src, msg))
        for src, dsts, msg in due_multi:
            entry = (src, msg)
            delivered += len(dsts)
            for dst in dsts:
                if dst in alive:
                    inbox_of(dst).append(entry)
        self._pending_count -= delivered
        # Every delivery appended exactly one inbox entry, so the received
        # counts are the inbox lengths — no per-message counter updates.
        received = {dst: len(entries) for dst, entries in inboxes.items()}
        hop_round = self._pending_hops
        self._pending_hops = None
        self.hop_delivery = None
        if hop_round is not None:
            delivery = hop_round.deliver(alive)
            self._pending_count -= delivery.total
            for dst, count in delivery.counts.items():
                received[dst] = received.get(dst, 0) + count
            self.hop_delivery = delivery
        return dict(inboxes), received
