"""Message transport with the paper's delivery semantics.

* A message sent in round ``t`` is received at the start of round ``t+1`` —
  if and only if the receiver is still in the network (churned-out nodes
  "do not receive any messages and leave immediately", while messages *they*
  sent in ``t-1`` are still delivered).
* Sending a message implicitly creates the directed edge ``(src, dst)`` in
  ``G_t``; the per-round edge sets are what the ``a``-late adversary observes.

The round boundary is split in two to honour these semantics:
``close_send_phase`` (end of round ``t``) freezes ``E_t`` while the messages
stay pending; ``deliver`` (start of round ``t+1``, *after* churn is applied)
hands each surviving receiver its inbox.

Multicasts (one payload to many receivers) are first-class: the payload object
is shared, not copied, which keeps the ``O(log^3 n)``-messages-per-node
protocol affordable in pure Python while message/edge counts stay exact.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

__all__ = ["Network", "Inbox"]

# An inbox is a list of (sender id, message object) pairs.
Inbox = list[tuple[int, object]]


class Network:
    """Collects sends during a round and delivers them the next round."""

    def __init__(self) -> None:
        self._sending: list[tuple[int, int, object]] = []
        self._sending_multi: list[tuple[int, tuple[int, ...], object]] = []
        self._pending: list[tuple[int, int, object]] = []
        self._pending_multi: list[tuple[int, tuple[int, ...], object]] = []
        self._sent_counts: defaultdict[int, int] = defaultdict(int)

    # ------------------------------------------------------------------
    # Sending (called by nodes during their compute phase)
    # ------------------------------------------------------------------

    def send(self, src: int, dst: int, msg: object) -> None:
        """Send one message; creates edge ``(src, dst)`` this round."""
        self._sending.append((src, int(dst), msg))
        self._sent_counts[src] += 1

    def send_many(
        self, src: int, dsts: Sequence[int] | Iterable[int], msg: object
    ) -> None:
        """Multicast the same payload to several receivers (one edge each).

        ``dsts`` may be any sequence, including a NumPy id array — receivers
        are not copied or converted on this hot path (NumPy integer ids hash
        and compare like Python ints).
        """
        if not hasattr(dsts, "__len__"):
            dsts = tuple(dsts)
        if len(dsts) == 0:
            return
        self._sending_multi.append((src, dsts, msg))
        self._sent_counts[src] += len(dsts)

    @property
    def has_pending(self) -> bool:
        """Whether any messages are awaiting delivery."""
        return bool(
            self._pending or self._pending_multi or self._sending or self._sending_multi
        )

    # ------------------------------------------------------------------
    # Round boundary (called by the engine)
    # ------------------------------------------------------------------

    def close_send_phase(self) -> tuple[list[tuple[int, int]], dict[int, int]]:
        """Freeze this round's sends: returns ``(E_t, sent_counts)``.

        The messages move to the pending queue for next round's delivery.
        """
        edges: list[tuple[int, int]] = []
        for src, dst, _ in self._sending:
            edges.append((src, dst))
        for src, dsts, _ in self._sending_multi:
            for dst in dsts:
                edges.append((src, dst))
        sent = dict(self._sent_counts)
        self._pending = self._sending
        self._pending_multi = self._sending_multi
        self._sending = []
        self._sending_multi = []
        self._sent_counts = defaultdict(int)
        return edges, sent

    def deliver(
        self, alive: frozenset[int] | set[int]
    ) -> tuple[dict[int, Inbox], dict[int, int]]:
        """Deliver pending messages to surviving receivers.

        Returns ``(inboxes, received_counts)``.  Must be called after the
        round's churn has been applied so that churned-out nodes receive
        nothing.
        """
        inboxes: dict[int, Inbox] = defaultdict(list)
        received: defaultdict[int, int] = defaultdict(int)
        for src, dst, msg in self._pending:
            if dst in alive:
                inboxes[dst].append((src, msg))
                received[dst] += 1
        for src, dsts, msg in self._pending_multi:
            for dst in dsts:
                if dst in alive:
                    inboxes[dst].append((src, msg))
                    received[dst] += 1
        self._pending = []
        self._pending_multi = []
        return dict(inboxes), dict(received)
