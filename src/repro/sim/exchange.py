"""Zero-copy boundary exchange for the sharded round engine.

PR 7's :mod:`repro.sim.shard` shipped every round's inboxes, hop columns
and send logs as pickled ``Pipe`` payloads — an O(traffic) serialization
tax paid per worker per round.  This module encodes the same payloads into
``multiprocessing.shared_memory`` arenas instead (:mod:`repro.util.arena`),
so the pipes degrade to a **control plane** carrying only offsets and
counts, and the bulk bytes cross the boundary exactly once, unserialized:

* **Downlink** (master -> workers): the shared hop columns — already
  columnar ``(msgs, steps)`` plus per-receiver row arrays — are written as
  int arrays into one master-owned slab; each ``RoutedMessage`` is framed
  *once per round* (identity-memoised) no matter how many bands reference
  it, where PR 7 pickled it once per band.  Inboxes become flat
  ``(sender, frame, step)`` integer triples; the residual control scalars
  (leaves, joins-with-slots, stalls, forwarded calls) ride in one small
  pickled frame per band.
* **Uplink** (workers -> master): each worker owns one fixed region of a
  second slab and writes its send log as an integer metadata stream plus
  framed message objects, its per-node marks, and its local hop-plane
  columns.  The master splices by reading views — no unpickling of bulk
  columns.

**Identity is part of the contract.**  Receiver-side hop dedup and plane
row interning key on *message object identity* (see ``node.on_round`` and
:class:`~repro.sim.hopplane.HopPlane`); the frame encoder/decoder memo
pair reproduces exactly the sharing structure a per-payload pickle memo
produced in PR 7, which is what keeps W∈{2,4} fingerprints bit-for-bit
identical (pinned by ``tests/integration/test_shard_identity.py``).

Overflow protocol: encoders raise :class:`~repro.util.arena.ArenaFull`;
the master regrows its downlink slab and re-encodes, while a worker falls
back to shipping that one round through the pipe (tagged ``"sends_pipe"``,
honestly counted as pipe bytes) and the master regrows the uplink slab for
the next round.  Both sides of the handshake live in
:mod:`repro.sim.shard`; this module is the pure encode/decode layer.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass

import numpy as np

from repro.routing.messages import Hop
from repro.sim.hopplane import HopDelivery
from repro.util.arena import (
    ByteArena,
    FrameDecoder,
    FrameEncoder,
    read_array,
    read_frame,
)

__all__ = [
    "DOWN_MIN_BYTES",
    "UP_BAND_MIN_BYTES",
    "ExchangeStats",
    "encode_downlink_shared",
    "decode_downlink_shared",
    "encode_downlink_band",
    "decode_downlink_band",
    "encode_uplink",
    "decode_uplink",
]

#: Initial downlink slab size; the regrow handshake doubles from here.
DOWN_MIN_BYTES = 1 << 20
#: Initial per-worker uplink region size; regrown on worker overflow.
UP_BAND_MIN_BYTES = 1 << 19

# Send-log item tags in the uplink metadata stream (mirror _SendLog's
# "s"/"b"/"m"/"mb" string tags as small ints).
_TAG_SINGLE = 0
_TAG_SINGLES_BATCH = 1
_TAG_MANY = 2
_TAG_MANY_BATCH = 3


@dataclass
class ExchangeStats:
    """Cumulative master-side byte accounting for the shard exchange.

    ``bytes_pipe`` counts every byte that still crosses a ``Pipe`` (control
    messages, acks, gathers, and any overflow-round fallback payloads);
    ``bytes_shm`` counts the bytes materialised into the shared slabs.  The
    regrow/fallback counters make the handshake observable in tests.
    """

    bytes_pipe: int = 0
    bytes_shm: int = 0
    rounds: int = 0
    regrows_down: int = 0
    regrows_up: int = 0
    fallback_rounds: int = 0


def _msg_key(enc: FrameEncoder, msg: object) -> tuple[int, int, int]:
    """``(is_hop, frame, step)`` for one send-log or inbox message.

    Hops are encoded *structurally* — the inner ``RoutedMessage`` is framed
    (shared via the memo) and the step travels as an int — so every decoded
    copy of a logical hop holds the same message object, which the
    receiver-side ``(message identity, step)`` dedup requires.
    """
    if isinstance(msg, Hop):
        return (1, enc.encode(msg.msg), msg.step)
    return (0, enc.encode(msg), -1)


def _decode_msg(dec: FrameDecoder, is_hop: int, ref: int, step: int) -> object:
    return Hop(dec.decode(ref), step) if is_hop else dec.decode(ref)


# ----------------------------------------------------------------------
# Downlink: master -> workers
# ----------------------------------------------------------------------


def encode_downlink_shared(
    arena: ByteArena, enc: FrameEncoder, hop_delivery: HopDelivery | None
) -> tuple[int, int, int] | None:
    """Write the round's shared hop columns once, for every band.

    Returns ``(steps_off, refs_off, n_rows)`` or ``None`` when no plane
    delivery is pending.  ``refs`` holds one frame offset per logical-hop
    row; a message referenced by many rows or bands is framed exactly once.
    """
    if hop_delivery is None:
        return None
    steps = np.ascontiguousarray(hop_delivery.steps, dtype=np.int32)
    steps_off = arena.put_array(steps)
    msgs = hop_delivery.msgs
    refs = np.fromiter(
        (enc.encode(m) for m in msgs), dtype=np.int64, count=len(msgs)
    )
    refs_off = arena.put_array(refs)
    return (steps_off, refs_off, len(msgs))


def decode_downlink_shared(
    buf: memoryview, dec: FrameDecoder, shared_desc: tuple[int, int, int] | None
) -> tuple[list[object], np.ndarray] | None:
    """Rebuild ``(msgs, steps)`` from the shared hop columns."""
    if shared_desc is None:
        return None
    steps_off, refs_off, n_rows = shared_desc
    steps = read_array(buf, steps_off, np.dtype(np.int32), n_rows).copy()
    refs = read_array(buf, refs_off, np.dtype(np.int64), n_rows).tolist()
    msgs = [dec.decode(ref) for ref in refs]
    return (msgs, steps)


def encode_downlink_band(
    arena: ByteArena,
    enc: FrameEncoder,
    control: tuple,
    inboxes: dict[int, list],
    hop_rows: dict[int, np.ndarray] | None,
) -> tuple:
    """Encode one band's private payload; returns its descriptor tuple.

    ``control`` is the small non-bulk remainder ``(leaves, joins, stalled,
    calls)`` and travels as one pickled frame.  Inboxes flatten into a
    ``(node, count)`` header table plus ``(sender, frame, step)`` entry
    triples; hop-row arrays flatten into a ``(node, count)`` header table
    plus one concatenated int32 row column.
    """
    control_off = arena.put_bytes(
        pickle.dumps(control, protocol=pickle.HIGHEST_PROTOCOL)
    )
    hdr: list[int] = []
    entries: list[int] = []
    for v, inbox in inboxes.items():
        hdr.append(v)
        hdr.append(len(inbox))
        for sender, msg in inbox:
            is_hop, ref, step = _msg_key(enc, msg)
            entries.append(sender)
            entries.append(ref)
            entries.append((step << 1) | is_hop)
    inbox_hdr_off = arena.put_array(np.array(hdr, dtype=np.int64))
    entries_off = arena.put_array(np.array(entries, dtype=np.int64))
    rows_hdr: list[int] = []
    rows_cat = np.empty(0, dtype=np.int32)
    if hop_rows:
        cols = []
        for v, rows in hop_rows.items():
            rows_hdr.append(v)
            rows_hdr.append(len(rows))
            cols.append(rows)
        rows_cat = np.concatenate(cols).astype(np.int32, copy=False)
    rows_hdr_off = arena.put_array(np.array(rows_hdr, dtype=np.int64))
    rows_off = arena.put_array(rows_cat)
    return (
        control_off,
        inbox_hdr_off,
        len(inboxes),
        entries_off,
        len(entries) // 3,
        rows_hdr_off,
        len(rows_hdr) // 2,
        rows_off,
        int(rows_cat.size),
    )


def decode_downlink_band(
    buf: memoryview, dec: FrameDecoder, desc: tuple
) -> tuple[tuple, dict[int, list], dict[int, np.ndarray]]:
    """Rebuild ``(control, inboxes, hop_rows)`` from a band descriptor."""
    (
        control_off,
        inbox_hdr_off,
        n_nodes,
        entries_off,
        n_entries,
        rows_hdr_off,
        n_row_nodes,
        rows_off,
        n_rows_total,
    ) = desc
    control = pickle.loads(read_frame(buf, control_off))
    hdr = read_array(buf, inbox_hdr_off, np.dtype(np.int64), 2 * n_nodes).tolist()
    ent = read_array(buf, entries_off, np.dtype(np.int64), 3 * n_entries).tolist()
    inboxes: dict[int, list] = {}
    e = 0
    for i in range(n_nodes):
        v = hdr[2 * i]
        count = hdr[2 * i + 1]
        inbox = []
        for _ in range(count):
            sender = ent[e]
            ref = ent[e + 1]
            packed = ent[e + 2]
            e += 3
            inbox.append((sender, _decode_msg(dec, packed & 1, ref, packed >> 1)))
        inboxes[v] = inbox
    rows_hdr = read_array(
        buf, rows_hdr_off, np.dtype(np.int64), 2 * n_row_nodes
    ).tolist()
    rows_cat = read_array(buf, rows_off, np.dtype(np.int32), n_rows_total)
    hop_rows: dict[int, np.ndarray] = {}
    lo = 0
    for i in range(n_row_nodes):
        v = rows_hdr[2 * i]
        count = rows_hdr[2 * i + 1]
        hop_rows[v] = rows_cat[lo : lo + count].copy()
        lo += count
    return control, inboxes, hop_rows


# ----------------------------------------------------------------------
# Uplink: workers -> master
# ----------------------------------------------------------------------


def encode_uplink(
    arena: ByteArena, enc: FrameEncoder, items: list, marks: list, plane_pack
) -> tuple:
    """Encode one worker's round output into its uplink region.

    ``items``/``marks`` are the :class:`~repro.sim.shard._SendLog` streams;
    ``plane_pack`` is its ``(msgs, steps, rows, lens, flat)`` hop columns
    (or ``None``).  Raises :class:`~repro.util.arena.ArenaFull` when the
    region is too small — the caller then falls back to the pipe for this
    round and requests a regrow.
    """
    marks_arr = np.array(marks, dtype=np.int64).reshape(-1)
    marks_off = arena.put_array(marks_arr)
    meta: list[int] = []
    for item in items:
        tag = item[0]
        if tag == "s":
            meta.append(_TAG_SINGLE)
            meta.append(item[1])
            meta.extend(_msg_key(enc, item[2]))
        elif tag == "b":
            pairs = item[1]
            meta.append(_TAG_SINGLES_BATCH)
            meta.append(len(pairs))
            for dst, msg in pairs:
                meta.append(dst)
                meta.extend(_msg_key(enc, msg))
        elif tag == "m":
            dsts = item[1]
            meta.append(_TAG_MANY)
            meta.append(len(dsts))
            meta.extend(_msg_key(enc, item[2]))
            meta.extend(dsts)
        else:  # "mb"
            pairs = item[1]
            meta.append(_TAG_MANY_BATCH)
            meta.append(len(pairs))
            for dsts, msg in pairs:
                meta.append(len(dsts))
                meta.extend(_msg_key(enc, msg))
                meta.extend(dsts)
    meta_off = arena.put_array(np.array(meta, dtype=np.int64))
    if plane_pack is not None:
        msgs, steps, rows, lens, flat = plane_pack
        refs = np.fromiter(
            (enc.encode(m) for m in msgs), dtype=np.int64, count=len(msgs)
        )
        refs_off = arena.put_array(refs)
        steps_off = arena.put_array(np.array(steps, dtype=np.int32))
        rows_off = arena.put_array(np.array(rows, dtype=np.int32))
        lens_off = arena.put_array(np.array(lens, dtype=np.int32))
        flat_off = arena.put_array(np.array(flat, dtype=np.int32))
        plane_desc = (
            refs_off,
            len(msgs),
            steps_off,
            rows_off,
            lens_off,
            len(rows),
            flat_off,
            len(flat),
        )
    else:
        plane_desc = None
    return (
        marks_off,
        len(marks),
        meta_off,
        len(meta),
        plane_desc,
        arena.used,
    )


def decode_uplink(buf: memoryview, dec: FrameDecoder, desc: tuple) -> tuple:
    """Rebuild ``(items, marks, plane_pack)`` from one worker's descriptor.

    The output shapes match what PR 7's pickled ``("sends", ...)`` payload
    carried — plain-int lists and per-band object lists — so the master's
    splice loop consumes them unchanged.
    """
    marks_off, n_marks, meta_off, meta_len, plane_desc, _used = desc
    marks_flat = read_array(buf, marks_off, np.dtype(np.int64), 3 * n_marks)
    marks = [tuple(row) for row in marks_flat.reshape(-1, 3).tolist()]
    meta = read_array(buf, meta_off, np.dtype(np.int64), meta_len).tolist()
    items: list[tuple] = []
    i = 0
    while i < meta_len:
        tag = meta[i]
        if tag == _TAG_SINGLE:
            dst, is_hop, ref, step = meta[i + 1 : i + 5]
            items.append(("s", dst, _decode_msg(dec, is_hop, ref, step)))
            i += 5
        elif tag == _TAG_SINGLES_BATCH:
            count = meta[i + 1]
            i += 2
            pairs = []
            for _ in range(count):
                dst, is_hop, ref, step = meta[i : i + 4]
                pairs.append((dst, _decode_msg(dec, is_hop, ref, step)))
                i += 4
            items.append(("b", pairs))
        elif tag == _TAG_MANY:
            count, is_hop, ref, step = meta[i + 1 : i + 5]
            dsts = tuple(meta[i + 5 : i + 5 + count])
            items.append(("m", dsts, _decode_msg(dec, is_hop, ref, step)))
            i += 5 + count
        else:  # _TAG_MANY_BATCH
            count = meta[i + 1]
            i += 2
            mpairs = []
            for _ in range(count):
                ndsts, is_hop, ref, step = meta[i : i + 4]
                dsts = tuple(meta[i + 4 : i + 4 + ndsts])
                mpairs.append((dsts, _decode_msg(dec, is_hop, ref, step)))
                i += 4 + ndsts
            items.append(("mb", mpairs))
    if plane_desc is not None:
        refs_off, n_msgs, steps_off, rows_off, lens_off, n_sends, flat_off, n_flat = (
            plane_desc
        )
        refs = read_array(buf, refs_off, np.dtype(np.int64), n_msgs).tolist()
        msgs = [dec.decode(ref) for ref in refs]
        steps = read_array(buf, steps_off, np.dtype(np.int32), n_msgs).tolist()
        rows = read_array(buf, rows_off, np.dtype(np.int32), n_sends).tolist()
        lens = read_array(buf, lens_off, np.dtype(np.int32), n_sends).tolist()
        flat = read_array(buf, flat_off, np.dtype(np.int32), n_flat).tolist()
        plane_pack = (msgs, steps, rows, lens, flat)
    else:
        plane_pack = None
    return items, marks, plane_pack
