"""Node identity and lifecycle bookkeeping.

Every node is identified by a unique, immutable integer id (the paper's
"IP address").  The :class:`Lifecycle` registry records when each node joined
and left, which is what churn-window queries like ``V_t ∩ V_{t-2}`` (the
join-via rule) and ``V_{t+T} ∩ V_t`` (the stability constraint) are answered
from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["NodeRecord", "Lifecycle"]


@dataclass
class NodeRecord:
    """Join/leave record of a single node."""

    node_id: int
    joined_round: int
    left_round: int | None = None

    def alive_at(self, t: int) -> bool:
        """Whether the node is in ``V_t``."""
        if t < self.joined_round:
            return False
        return self.left_round is None or t < self.left_round

    def age_at(self, t: int) -> int:
        """Rounds since joining (0 in the join round)."""
        return t - self.joined_round


@dataclass
class Lifecycle:
    """Registry of all node records, past and present."""

    records: dict[int, NodeRecord] = field(default_factory=dict)
    _alive: set[int] = field(default_factory=set)

    def add(self, node_id: int, joined_round: int) -> NodeRecord:
        if node_id in self.records:
            raise ValueError(f"node id {node_id} already used; ids are immutable")
        rec = NodeRecord(node_id, joined_round)
        self.records[node_id] = rec
        self._alive.add(node_id)
        return rec

    def remove(self, node_id: int, left_round: int) -> None:
        rec = self.records.get(node_id)
        if rec is None or node_id not in self._alive:
            raise KeyError(f"node {node_id} is not alive")
        rec.left_round = left_round
        self._alive.discard(node_id)

    @property
    def alive(self) -> frozenset[int]:
        """Ids of currently alive nodes."""
        return frozenset(self._alive)

    def __len__(self) -> int:
        return len(self._alive)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._alive

    def joined_round(self, node_id: int) -> int:
        return self.records[node_id].joined_round

    def age(self, node_id: int, t: int) -> int:
        return self.records[node_id].age_at(t)

    def alive_at(self, t: int) -> set[int]:
        """Reconstruct ``V_t`` from the records (for audits; O(#records))."""
        return {i for i, rec in self.records.items() if rec.alive_at(t)}

    def alive_since(self, t: int, min_age_rounds: int) -> set[int]:
        """Alive nodes that joined at least ``min_age_rounds`` rounds before ``t``."""
        return {
            i
            for i in self._alive
            if self.records[i].joined_round <= t - min_age_rounds
        }

    def next_id(self) -> int:
        """A fresh, never-used node id."""
        return max(self.records, default=-1) + 1
