"""Columnar transport for in-flight routed hops.

Routed hops are ~90% of all traffic: every holder of a message forwards it to
``r`` random swarm members (mid-route) or to the whole target swarm (final
step), so each *logical* hop — one ``(RoutedMessage, step)`` pair — fans out
into many receiver copies, and receivers near each other hold almost the same
hop sets.  The seed implementation shipped each copy as a ``(sender, Hop)``
inbox tuple and every receiver re-classified every copy in Python; with ~9
copies per logical hop per receiver that is the dominant round cost.

:class:`HopPlane` stores a round's hop traffic in columns instead:

* each logical hop is **interned once per round** — the first send of a
  ``(message identity, step)`` pair assigns it a dense row id; the message
  object and step live in per-row columns (one entry per *logical* hop);
* sends append ``(src, row, receiver-count)`` plus a flat receiver list —
  no per-copy objects at all;
* at delivery the copies are grouped by receiver with one stable argsort, so
  each receiver gets a NumPy array of row ids *in exactly the order the
  copies would have appeared in its legacy inbox* (global send order —
  multicast delivery order never interleaved with singles, so dropping hops
  from the object inboxes preserves every observable ordering);
* per-round classification work (next step, final-step test, lookup point)
  happens **once per logical hop** for the whole network — receivers share
  the columns through :attr:`HopDelivery.cache` and merely gather their row
  subset — instead of once per copy per receiver.

The plane is only mounted when no fault plan is active: fault fates can
split one round's copies across delivery rounds, which breaks the one-round
row-interning invariant (a delayed copy must still deduplicate against a
fresh copy of the same logical hop; see ``Engine.__init__``).  Fault runs
keep the per-copy object path, whose behaviour the plane is pinned against
bit-for-bit by the equivalence suite.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["HopPlane", "FrozenHopRound", "HopDelivery"]


def _freeze_i32(col: list[int]) -> np.ndarray:
    """One-shot int32 conversion of a live append column.

    The live plane appends into plain Python lists — extending a list with a
    list is a pointer memcpy, an order of magnitude cheaper per call than
    ``array('i').extend``'s per-item ``__index__`` conversions on the hot
    forwarding paths — and pays the machine-typing cost exactly once here,
    as a single C-level conversion at freeze time.
    """
    return np.array(col, dtype=np.int32)


class HopDelivery:
    """One round's hop arrivals, grouped by receiver.

    ``msgs``/``steps`` are the shared per-row columns (row id -> logical
    hop); ``rows`` maps each surviving receiver to its row-id array in
    arrival order, already deduplicated to first occurrences (the same
    result as the legacy per-receiver ``(message identity, step)`` seen-set,
    computed in one vectorised pass at delivery).  ``counts`` keeps the
    pre-dedup copy count per receiver — the legacy inbox length.  ``cache``
    is scratch space where the protocol layer memoises derived per-row
    columns so classification runs once per round, not once per receiver.
    """

    __slots__ = ("msgs", "steps", "rows", "counts", "total", "cache")

    def __init__(
        self,
        msgs: list[object],
        steps: np.ndarray,
        rows: dict[int, np.ndarray],
        counts: dict[int, int],
        total: int,
    ) -> None:
        self.msgs = msgs
        self.steps = steps
        self.rows = rows
        self.counts = counts
        self.total = total
        self.cache: dict[object, object] = {}


class FrozenHopRound:
    """The immutable hop traffic of one closed send phase.

    Columns are frozen into NumPy arrays at close time: the append lists the
    live plane grew are released immediately, so a pending round (and the
    trace's :class:`~repro.sim.network.EdgeLog`, which shares this object)
    holds 8-byte machine ints instead of Python list slots plus boxed ints.
    """

    __slots__ = ("msgs", "steps", "srcs", "send_rows", "lens", "flat")

    def __init__(
        self,
        msgs: list[object],
        steps: list[int],
        srcs: list[int],
        send_rows: list[int],
        lens: list[int],
        flat: list[int],
    ) -> None:
        self.msgs = msgs
        self.steps = np.array(steps, dtype=np.int32)
        self.srcs = _freeze_i32(srcs)
        self.send_rows = _freeze_i32(send_rows)
        self.lens = _freeze_i32(lens)
        self.flat = _freeze_i32(flat)

    def copies(self) -> int:
        """Total receiver copies frozen in this round."""
        return int(self.flat.size)

    def edge_columns(self) -> tuple[np.ndarray, np.ndarray]:
        """The round's hop edges as ``(srcs, dsts)`` per-copy id arrays."""
        return np.repeat(self.srcs, self.lens), self.flat

    def iter_edges(self):
        """Yield ``(src, dst)`` per copy, in send order (EdgeLog expansion)."""
        srcs, dsts = self.edge_columns()
        return zip(srcs.tolist(), dsts.tolist())

    def deliver(self, alive) -> HopDelivery:
        """Group the copies by surviving receiver (one stable argsort).

        Each receiver's rows are deduplicated to first occurrences here, in
        one vectorised pass for the whole network, instead of per receiving
        node: the stable sort keeps arrival order inside a segment, and the
        ``(receiver, row)`` unique-index mask keeps exactly the copies a
        per-node ``dict.fromkeys`` would have kept.  ``counts`` stays
        pre-dedup — it mirrors the legacy inbox length.
        """
        flat = self.flat
        rows = np.repeat(self.send_rows, self.lens)
        order = np.argsort(flat, kind="stable")  # stable: keep send order per dst
        dst_sorted = flat[order]
        row_sorted = rows[order]
        if dst_sorted.size:
            starts = np.flatnonzero(np.r_[True, dst_sorted[1:] != dst_sorted[:-1]])
            ends = np.r_[starts[1:], dst_sorted.size]
            receivers = dst_sorted[starts].tolist()
            key = (dst_sorted.astype(np.int64) << 32) | row_sorted
            uniq, first = np.unique(key, return_index=True)
            if uniq.size != key.size:
                mask = np.zeros(key.size, dtype=bool)
                mask[first] = True
                row_kept = row_sorted[mask]
                csum0 = np.r_[0, np.cumsum(mask)]
                kept_starts = csum0[starts].tolist()
                kept_ends = csum0[ends].tolist()
            else:
                row_kept = row_sorted
                kept_starts = starts.tolist()
                kept_ends = ends.tolist()
            starts_l = starts.tolist()
            ends_l = ends.tolist()
        else:
            receivers = []
            starts_l = ends_l = kept_starts = kept_ends = []
            row_kept = row_sorted
        by_dst: dict[int, np.ndarray] = {}
        counts: dict[int, int] = {}
        for i, dst in enumerate(receivers):
            if dst in alive:
                by_dst[dst] = row_kept[kept_starts[i]:kept_ends[i]]
                counts[dst] = ends_l[i] - starts_l[i]
        return HopDelivery(
            self.msgs,
            self.steps,
            by_dst,
            counts,
            total=int(flat.size),
        )


class HopPlane:
    """Per-round columnar collector of hop sends (see module docstring)."""

    __slots__ = ("_reg", "_msgs", "_steps", "_srcs", "_rows", "_lens", "_flat")

    def __init__(self) -> None:
        self._reset()

    def _reset(self) -> None:
        self._reg: dict[int, int] = {}  # (id(msg) << 7 | step) -> row
        self._msgs: list[object] = []
        self._steps: list[int] = []
        # Send columns are plain lists while the round is live: list appends
        # and list-with-list extends are pointer copies (no per-item int
        # conversion), and the freeze converts each column to int32 once
        # (see _freeze_i32).
        self._srcs: list[int] = []
        self._rows: list[int] = []
        self._lens: list[int] = []
        self._flat: list[int] = []

    def send(self, src: int, msg: object, step: int, dsts: Sequence[int]) -> int:
        """File one hop multicast; returns the number of copies created.

        ``dsts`` must be a plain-``int`` sequence (the node hot paths already
        produce those).  The ``(message identity, step)`` pair is interned to
        a row id — message objects are shared per logical request with
        once-only construction, so identity equals the documented msg_id
        dedup, exactly like the legacy ``Hop`` path.
        """
        n = len(dsts)
        if n == 0:
            return 0
        # Pack (identity, step) into one int: cheaper to hash than a tuple.
        # Steps are bounded by final_step = 2*lam + 2 << 128, so the low
        # 7 bits never collide across message identities.
        # repro: allow(id-ordering): identity interning only — rows are
        # numbered by first-append order; the id value never orders anything.
        key = (id(msg) << 7) | step
        row = self._reg.get(key)
        if row is None:
            row = len(self._msgs)
            self._reg[key] = row
            self._msgs.append(msg)
            self._steps.append(step)
        self._srcs.append(src)
        self._rows.append(row)
        self._lens.append(n)
        self._flat.extend(dsts)
        return n

    def send_batch(
        self, src: int, items: list[tuple[object, int, Sequence[int]]]
    ) -> int:
        """File many hop multicasts from one sender in one call.

        Equivalent to :meth:`send` per ``(msg, step, dsts)`` item in order;
        the node forwarding loops issue one multicast per held hop, so the
        per-call overhead this folds away is the dominant remaining cost.
        """
        reg = self._reg
        reg_get = reg.get
        msgs = self._msgs
        steps = self._steps
        srcs = self._srcs
        rows = self._rows
        lens = self._lens
        flat = self._flat
        total = 0
        for msg, step, dsts in items:
            n = len(dsts)
            if n == 0:
                continue
            # repro: allow(id-ordering): identity interning only — rows are
            # numbered by first-append order; the id value never orders anything.
            key = (id(msg) << 7) | step
            row = reg_get(key)
            if row is None:
                row = len(msgs)
                reg[key] = row
                msgs.append(msg)
                steps.append(step)
            srcs.append(src)
            rows.append(row)
            lens.append(n)
            flat.extend(dsts)
            total += n
        return total

    def columns(
        self,
    ) -> tuple[
        dict[int, int],
        list[object],
        list[int],
        list[int],
        list[int],
        list[int],
        list[int],
    ]:
        """Low-level append targets ``(reg, msgs, steps, srcs, rows, lens,
        flat)`` for fused hot loops.

        The protocol forwarding loops run once per held hop per node — the
        innermost cost of a round — so they intern and append *inline*
        instead of paying a method call per hop (see :meth:`send` for the
        semantics they must reproduce: intern on ``id(msg) << 7 | step``,
        append one ``(src, row, len)`` triple plus the flat receivers, and
        report the copy total to ``Network.count_hop_sends``).
        """
        return (
            self._reg,
            self._msgs,
            self._steps,
            self._srcs,
            self._rows,
            self._lens,
            self._flat,
        )

    def pack(
        self,
    ) -> tuple[list[object], list[int], list[int], list[int], list[int]]:
        """The live columns as ``(msgs, steps, rows, lens, flat)``.

        This is the shard uplink's transport tuple: the source column is
        dropped because the master replays each node's plane segment under
        that node's own id while splicing (:mod:`repro.sim.shard`), and the
        int columns ride the shared uplink slab as int32 arrays
        (:mod:`repro.sim.exchange`).
        """
        return (self._msgs, self._steps, self._rows, self._lens, self._flat)

    def close_round(self) -> FrozenHopRound | None:
        """Freeze this round's hop sends; ``None`` when there were none.

        Row interning is per round by design: all copies of a logical hop
        are sent and delivered within one round boundary (the plane is never
        mounted together with fault plans, which are the only source of
        cross-round copies).
        """
        if not self._msgs:
            return None
        frozen = FrozenHopRound(
            self._msgs, self._steps, self._srcs, self._rows, self._lens, self._flat
        )
        self._reset()
        return frozen
