"""The graph-series recorder — what the (a, b)-late adversary observes.

The trace stores, per round ``t``:

* the directed edge list ``E_t`` (who messaged whom), kept in a bounded ring
  buffer because only the most recent ``depth`` rounds are ever consulted
  (the adversary needs ``G_{t-a}`` with small ``a``; audits need a couple of
  rounds of history);
* the alive set ``V_t`` (small, kept for the whole run);
* join/leave events.

Access control (who may see which round) is *not* enforced here — that is the
job of :class:`repro.adversary.view.AdversaryView`, which wraps a trace and
clamps queries to the lateness bounds.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["GraphTrace"]


class GraphTrace:
    """Bounded-memory recorder of the evolving communication graph."""

    def __init__(self, edge_depth: int = 16) -> None:
        if edge_depth < 1:
            raise ValueError(f"edge_depth must be positive, got {edge_depth}")
        self.edge_depth = edge_depth
        self._edges: OrderedDict[int, list[tuple[int, int]]] = OrderedDict()
        self._alive: dict[int, frozenset[int]] = {}
        self._joins: dict[int, tuple[int, ...]] = {}
        self._leaves: dict[int, tuple[int, ...]] = {}
        self._last_round: int | None = None

    @property
    def last_round(self) -> int | None:
        """Most recently recorded round, or ``None`` before the first record."""
        return self._last_round

    def record(
        self,
        t: int,
        edges: list[tuple[int, int]],
        alive: frozenset[int],
        joins: tuple[int, ...] = (),
        leaves: tuple[int, ...] = (),
    ) -> None:
        """Record one completed round (rounds must be recorded in order)."""
        if self._last_round is not None and t != self._last_round + 1:
            raise ValueError(
                f"rounds must be recorded consecutively; got {t} after {self._last_round}"
            )
        # An EdgeLog is compacted to id arrays on entry: the trace keeps
        # ``edge_depth`` rounds alive, and holding the frozen send lists (or
        # a list of pair tuples) that long dominates peak RSS at scale.
        compact = getattr(edges, "compact", None)
        if compact is not None:
            compact()
        self._edges[t] = edges
        while len(self._edges) > self.edge_depth:
            self._edges.popitem(last=False)
        self._alive[t] = alive
        self._joins[t] = tuple(joins)
        self._leaves[t] = tuple(leaves)
        self._last_round = t

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def edges_at(self, t: int) -> list[tuple[int, int]] | None:
        """``E_t``, or ``None`` if that round was evicted or never recorded."""
        return self._edges.get(t)

    def alive_at(self, t: int) -> frozenset[int] | None:
        """``V_t`` (after churn of round ``t`` was applied)."""
        return self._alive.get(t)

    def joins_at(self, t: int) -> tuple[int, ...]:
        return self._joins.get(t, ())

    def leaves_at(self, t: int) -> tuple[int, ...]:
        return self._leaves.get(t, ())

    def survivors(self, t0: int, t1: int) -> frozenset[int]:
        """``V_{t0} ∩ V_{t1}`` — nodes present at both rounds (for audits)."""
        a, b = self._alive.get(t0), self._alive.get(t1)
        if a is None or b is None:
            raise KeyError(f"rounds {t0}/{t1} not recorded")
        return a & b

    def out_neighbors_at(self, t: int, v: int) -> set[int]:
        """Nodes ``v`` sent to in round ``t`` (empty if unknown/evicted)."""
        edges = self._edges.get(t)
        if edges is None:
            return set()
        return {dst for src, dst in edges if src == v}

    def contacts_of(self, t: int, v: int) -> set[int]:
        """All nodes that communicated with ``v`` in round ``t`` (either way)."""
        edges = self._edges.get(t)
        if edges is None:
            return set()
        out: set[int] = set()
        for src, dst in edges:
            if src == v:
                out.add(dst)
            elif dst == v:
                out.add(src)
        return out
