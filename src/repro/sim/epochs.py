"""Epoch-shared computation cache: one position table per epoch, not per node.

The maintenance protocol rebuilds the whole overlay every two rounds, and in
the seed implementation every node re-derived the same shared facts alone:
``h(v, e)`` was re-evaluated per sponsor per launch, and every node argsorted
a private :class:`~repro.overlay.positions.PositionIndex` from records its
neighbours were sorting too — total work n·swarm² instead of n·swarm.

:class:`EpochCache` is the engine-level service that deduplicates this work.
It is *pure memoisation*: every value it returns is exactly what the node
would have computed itself (the equivalence suite pins this bit-for-bit), so
protocol fidelity — who knows what, when — is untouched.  Per epoch ``e`` it
keeps:

* a flat ``id -> h(v, e)`` **position table**, filled on first use either by
  evaluating the keyed hash (launch paths) or from the positions nodes carry
  in their records (cutover paths — records are hash-derived by
  construction, so first-writer-wins is consistent);
* one **slab**: a single position-sorted :class:`PositionIndex` over every id
  the epoch's table knows, grown *incrementally* with
  :meth:`PositionIndex.with_added` (O(changed + n) splice, no re-sort) as new
  ids surface;
* an **intern table** mapping a member ``frozenset`` to the index built for
  it, so nodes with identical neighbourhoods share one index object — same
  sorted arrays, same lazily-built id maps.  A member set that covers the
  whole slab gets the slab itself; small complements are carved out with
  :meth:`PositionIndex.without`, larger ones with
  :meth:`PositionIndex.restricted` (identical results, different cost).

Tables more than one epoch behind the engine's clock are pruned each round;
indexes already handed to nodes survive via the nodes' own references.
"""

from __future__ import annotations

from itertools import islice
from typing import Iterable, Mapping

from repro.overlay.positions import PositionIndex
from repro.util.rngs import PositionHash

__all__ = ["EpochCache"]


class EpochCache:
    """Shared per-epoch position tables and interned position indexes."""

    __slots__ = (
        "_hash",
        "_tables",
        "_slabs",
        "_slab_sizes",
        "_interned",
        "_floor",
        "_round_scratch",
        "_round_scratch_t",
    )

    def __init__(self, position_hash: PositionHash) -> None:
        self._hash = position_hash
        self._tables: dict[int, dict[int, float]] = {}
        self._slabs: dict[int, PositionIndex] = {}
        self._slab_sizes: dict[int, int] = {}
        self._interned: dict[int, dict[frozenset[int], PositionIndex]] = {}
        self._floor = -(10**9)  # epochs below this are pruned
        self._round_scratch: dict[object, object] = {}
        self._round_scratch_t: int | None = None

    # ------------------------------------------------------------------
    # Memoised position hash
    # ------------------------------------------------------------------

    def position(self, node_id: int, epoch: int) -> float:
        """Memoised ``h(node_id, epoch)`` — one BLAKE2b per (id, epoch).

        Every sponsor launching a JOIN for the same fresh node evaluates the
        same hash; the epoch table turns the duplicates into dict probes.
        """
        table = self._tables.get(epoch)
        if table is None:
            table = self._tables[epoch] = {}
        p = table.get(node_id)
        if p is None:
            p = self._hash.position(node_id, epoch)
            table[node_id] = p
        return p

    def table(self, epoch: int) -> Mapping[int, float]:
        """The (read-only) id -> position table known so far for ``epoch``."""
        return self._tables.get(epoch, {})

    # ------------------------------------------------------------------
    # Interned indexes over the shared slab
    # ------------------------------------------------------------------

    def index_for(
        self,
        epoch: int,
        members: frozenset[int],
        positions: Mapping[int, float],
    ) -> PositionIndex:
        """The position index over ``members`` at ``epoch`` — interned.

        ``positions`` supplies ``h(v, epoch)`` for any member the epoch table
        has not seen yet (nodes read these straight out of their Join/Create
        records, which are hash-derived by construction); members already in
        the table cost one dict probe.  Two calls with the same member set
        return the *same object*, so equal neighbourhoods share their sorted
        arrays and lazy id maps across nodes.
        """
        interned = self._interned.get(epoch)
        if interned is None:
            interned = self._interned[epoch] = {}
        idx = interned.get(members)
        if idx is not None:
            return idx
        table = self._tables.get(epoch)
        if table is None:
            table = self._tables[epoch] = {}
        for v in members:
            if v not in table:
                table[v] = positions[v]
        slab = self._sync_slab(epoch, table)
        extras = table.keys() - members
        if not extras:
            idx = slab  # the member set covers the whole slab: share it as-is
        elif 4 * len(extras) <= len(members):
            # Small complement (e.g. churn survivors): O(extras + n) carve.
            idx = slab.without(extras)
        else:
            idx = slab.restricted(members)
        interned[members] = idx
        return idx

    def _sync_slab(self, epoch: int, table: dict[int, float]) -> PositionIndex:
        """Grow the epoch slab to cover every table entry (incremental)."""
        slab = self._slabs.get(epoch)
        synced = self._slab_sizes.get(epoch, 0)
        if slab is None or synced == 0:
            slab = PositionIndex(table)
        elif synced < len(table):
            # dicts preserve insertion order: the unsynced tail is new.
            # repro: allow(unordered-iteration): dict .keys() is
            # insertion-ordered, and the h(v,e) table is grown in the
            # deterministic engine node order — the tail slice is reproducible.
            new_ids = list(islice(table.keys(), synced, None))
            slab = slab.with_added(new_ids, [table[v] for v in new_ids])
        else:
            return slab
        self._slabs[epoch] = slab
        self._slab_sizes[epoch] = len(table)
        return slab

    def slab(self, epoch: int) -> PositionIndex | None:
        """The shared epoch-sorted slab (or ``None`` before first use)."""
        table = self._tables.get(epoch)
        if not table:
            return None
        return self._sync_slab(epoch, table)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def begin_round(self, t: int) -> None:
        """Advance the engine clock: prune state for epochs that ended.

        Overlay ``D_e`` is current during rounds ``2e`` and ``2e + 1``; once
        the engine enters epoch ``e`` no node will ever build an index for an
        epoch below ``e`` again (launch positions always target the future),
        so everything older is dropped.  Indexes nodes still hold stay alive
        through their own references.
        """
        floor = t // 2
        if floor <= self._floor:
            return
        self._floor = floor
        for store in (self._tables, self._slabs, self._slab_sizes, self._interned):
            for e in [e for e in store if e < floor]:
                del store[e]

    def round_scratch(self, t: int) -> dict[object, object]:
        """Memo space shared by all nodes within round ``t`` only.

        Cleared on the first call of each round; for caching derived views of
        objects that are themselves shared across nodes within one round
        (e.g. the memoised CREATE batches).  Callers must only store values
        that are a pure function of the keyed object plus round-constant
        parameters, never per-node state.
        """
        if t != self._round_scratch_t:
            self._round_scratch_t = t
            self._round_scratch = {}
        return self._round_scratch

    def drop_ids(self, epoch: int, ids: Iterable[int]) -> None:
        """Forget specific ids for one epoch (test/maintenance hook)."""
        table = self._tables.get(epoch)
        if not table:
            return
        dropped = [v for v in ids if v in table]
        if not dropped:
            return
        for v in dropped:
            del table[v]
        # Rebuild slab state lazily from the shrunk table.
        self._slabs.pop(epoch, None)
        self._slab_sizes.pop(epoch, None)
        self._interned.pop(epoch, None)

    def stats(self) -> dict[str, int]:
        """Cache occupancy counters (diagnostics)."""
        return {
            "epochs": len(self._tables),
            "positions": sum(len(t) for t in self._tables.values()),
            "interned": sum(len(m) for m in self._interned.values()),
        }
