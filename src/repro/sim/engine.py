"""The synchronous round engine — the paper's execution model.

Each round ``t`` unfolds exactly as in Section 1.1:

1. **Adversary phase** — before any message is received, the adversary picks
   a set ``O_t ⊆ V_{t-1}`` of leaving nodes (they receive nothing and vanish
   immediately) and a set of joining nodes, each with a bootstrap node from
   ``V_t ∩ V_{t-2}`` that receives the newcomer's reference this round.  The
   decision is validated against the churn budget (:class:`ChurnLedger`).
2. **Receive phase** — messages sent in round ``t-1`` are delivered to the
   surviving receivers.
3. **Compute + send phase** — every alive node runs its protocol step; sends
   become the edge set ``E_t`` and are delivered next round.

The engine records the graph trace (what the ``a``-late adversary sees),
collects congestion metrics, and hands each node only its own context — no
protocol can peek at global state.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.adversary.base import Adversary, ChurnDecision
from repro.adversary.budget import ChurnLedger, ChurnViolation
from repro.adversary.view import AdversaryView
from repro.config import ProtocolParams
from repro.core.nodestore import NodeStore
from repro.faults.health import DegradationEvent, HealthMonitor
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.sim.epochs import EpochCache
from repro.sim.hopplane import HopDelivery, HopPlane
from repro.sim.identity import Lifecycle
from repro.sim.metrics import MetricsCollector, RoundMetrics
from repro.sim.network import Inbox, Network
from repro.sim.profile import PhaseProfiler, PhaseTimings
from repro.sim.trace import GraphTrace
from repro.util.gctune import deferred_gc
from repro.util.rngs import PositionHash, RngService

__all__ = [
    "JoinNotice",
    "EngineServices",
    "NodeContext",
    "NodeProtocol",
    "RoundReport",
    "Engine",
]


@dataclass(frozen=True)
class JoinNotice:
    """Delivered to a bootstrap node when a new node joins via it (round t)."""

    __protocol__ = True

    new_id: int


@dataclass(frozen=True)
class EngineServices:
    """Engine-level services available to protocol instances.

    ``position_hash`` is the paper's uniform hash ``h(v, epoch)`` known to all
    nodes (but not to the adversary); ``rng`` hands out per-node protocol
    randomness streams.  ``epoch_cache`` (when the engine enables it) shares
    memoised hash evaluations and interned position indexes across nodes —
    pure memoisation, so protocols may use it freely without changing what
    any node could have computed alone.  ``None`` means every node computes
    its own state from scratch (the bit-for-bit reference path).
    """

    params: ProtocolParams
    rng: RngService
    position_hash: PositionHash
    epoch_cache: EpochCache | None = None


class NodeContext:
    """One node's window onto a single round.

    When the engine's columnar hop plane is mounted, routed hops arrive as
    ``hops`` (this node's row-id array into the shared ``hop_delivery``
    columns) instead of inbox objects, and are sent via :meth:`send_hops`.
    """

    __slots__ = (
        "node_id",
        "round",
        "inbox",
        "rng",
        "params",
        "joined_round",
        "_network",
        "hops",
        "hop_delivery",
    )

    def __init__(
        self,
        node_id: int,
        t: int,
        inbox: Inbox,
        rng: np.random.Generator,
        params: ProtocolParams,
        joined_round: int,
        network: Network,
        hops: "np.ndarray | None" = None,
        hop_delivery: HopDelivery | None = None,
    ) -> None:
        self.node_id = node_id
        self.round = t
        self.inbox = inbox
        self.rng = rng
        self.params = params
        self.joined_round = joined_round
        self._network = network
        self.hops = hops
        self.hop_delivery = hop_delivery

    @property
    def age(self) -> int:
        """Rounds since this node joined (0 during its join round)."""
        return self.round - self.joined_round

    def send(self, dst: int, msg: object) -> None:
        """Send ``msg`` to node ``dst`` (delivered next round)."""
        self._network.send(self.node_id, dst, msg)

    def send_singles_batch(self, items: list[tuple[int, object]]) -> None:
        """Send many single-receiver messages at once (plain-``int`` dsts).

        Order-equivalent to calling :meth:`send` per ``(dst, msg)`` item.
        Hot-path helper for the matchmaking and join-rebroadcast loops,
        which send one distinct payload per receiver.
        """
        self._network.send_singles_batch(self.node_id, items)

    def send_many(self, dsts: Sequence[int] | Iterable[int], msg: object) -> None:
        """Send the same message to several nodes."""
        self._network.send_many(self.node_id, dsts, msg)

    def send_many_batch(self, items: list[tuple[tuple[int, ...], object]]) -> None:
        """Send many multicasts at once (pre-tupled plain-``int`` receivers).

        Order-equivalent to calling :meth:`send_many` per ``(dsts, msg)``
        item; empty receiver tuples are skipped.  Hot-path helper for the
        per-hop forwarding loops.
        """
        self._network.send_many_batch(self.node_id, items)

    @property
    def has_hop_plane(self) -> bool:
        """Whether routed hops travel the columnar plane this run."""
        return self._network.plane is not None

    def send_hops(self, msg: object, step: int, dsts: Sequence[int]) -> None:
        """Multicast one routed hop via the columnar plane (plain-int dsts)."""
        self._network.send_hops(self.node_id, msg, step, dsts)

    def send_hops_batch(
        self, items: list[tuple[object, int, Sequence[int]]]
    ) -> None:
        """Send many hop multicasts at once (``(msg, step, dsts)`` items).

        Order-equivalent to :meth:`send_hops` per item; empty receiver
        lists are skipped.
        """
        self._network.send_hops_batch(self.node_id, items)

    def hop_columns(self):
        """The plane's raw append targets (see :meth:`HopPlane.columns`).

        For fused forwarding loops that intern/append inline instead of
        paying one call per hop; callers must report their copy total via
        :meth:`count_hop_sends` afterwards.
        """
        return self._network.plane.columns()

    def count_hop_sends(self, n: int) -> None:
        """Account ``n`` copies filed directly through :meth:`hop_columns`."""
        self._network.count_hop_sends(self.node_id, n)


class NodeProtocol(abc.ABC):
    """Per-node protocol state machine."""

    @abc.abstractmethod
    def on_round(self, ctx: NodeContext) -> None:
        """Handle one round: read ``ctx.inbox``, update state, send messages."""

    def publish_state(self, store: NodeStore, slot: int) -> None:
        """Mirror this node's scalar state into its columnar store row.

        Called by the engine after every compute phase (and by shard
        workers for their band).  The default publishes nothing — the row
        keeps its ensure-time pattern; protocols with phase/epoch/position
        scalars override this with one :meth:`NodeStore.publish` call.
        """


ProtocolFactory = Callable[[int, EngineServices], NodeProtocol]


@dataclass(frozen=True)
class RoundReport:
    """What happened in one engine round.

    ``health`` carries the degradation events the attached
    :class:`~repro.faults.health.HealthMonitor` (if any) emitted this round.
    """

    round: int
    decision: ChurnDecision
    rejected: str | None
    metrics: RoundMetrics
    health: tuple[DegradationEvent, ...] = ()

    @property
    def alive(self) -> int:
        return self.metrics.alive


class Engine:
    """Drives the synchronous execution of a protocol under an adversary."""

    def __init__(
        self,
        params: ProtocolParams,
        protocol_factory: ProtocolFactory,
        adversary: Adversary | None = None,
        *,
        trace_depth: int = 16,
        strict_budget: bool = True,
        join_min_age: int = 2,
        faults: FaultPlan | None = None,
        health: HealthMonitor | None = None,
        profiler: PhaseProfiler | None = None,
        epoch_cache: bool = True,
        hop_plane: bool = True,
        workers: int = 1,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if workers > 1 and health is not None:
            # HealthMonitor probes protocol objects every round; under
            # sharding that would force a full gather per round, silently
            # erasing the decomposition.  Keep the combination an explicit
            # error instead of a 10x slowdown.
            raise ValueError("health monitoring requires workers=1")
        self.params = params
        self.rng_service = RngService(params.seed)
        position_hash = self.rng_service.position_hash()
        self.services = EngineServices(
            params=params,
            rng=self.rng_service,
            position_hash=position_hash,
            epoch_cache=EpochCache(position_hash) if epoch_cache else None,
        )
        self.protocol_factory = protocol_factory
        self.adversary = adversary
        self.strict_budget = strict_budget
        self.lifecycle = Lifecycle()
        self.network = Network()
        if hop_plane and faults is None:
            # The columnar hop plane assumes every send of a round shares one
            # delivery fate; any fault plan can delay/duplicate copies across
            # rounds, which would defeat per-round hop interning — fall back
            # to the per-copy object path whenever faults are in play.
            self.network.plane = HopPlane()
        self.fault_plan = faults
        self.faults = (
            FaultInjector(faults, position_hash=self.services.position_hash)
            if faults is not None
            else None
        )
        if self.faults is not None:
            self.network.fault_hook = self.faults
        self.health = health
        #: Optional per-phase wall-time profiler; ``None`` (the default)
        #: skips every timing statement in :meth:`run_round`.
        self.profiler = profiler
        self.trace = GraphTrace(edge_depth=trace_depth)
        self.metrics = MetricsCollector()
        self.ledger = ChurnLedger(params, join_min_age=join_min_age)
        self.round = 0
        # Cached ``sorted(alive)`` for the compute phase; rebuilt only when a
        # round's churn decision actually changes the population.
        self._sorted_alive: list[int] | None = None
        self._protocols: dict[int, NodeProtocol] = {}
        self._rngs: dict[int, np.random.Generator] = {}
        self.reports: list[RoundReport] = []
        #: Columnar scalar snapshot of every node (phase/epoch/position).
        #: At ``workers > 1`` the shard runner re-homes it into a
        #: shared-memory slab with band-contiguous rows before forking.
        self.node_store = NodeStore()
        self.workers = workers
        self._shard = None  # built lazily at the first sharded run_round
        self._exchange_stats = None  # retained snapshot after close()
        self._shard_bands: dict[int, int] = {}
        self._gathered_round = -1
        self._pending_node_calls: list[tuple[int, str, tuple]] = []

    # ------------------------------------------------------------------
    # Population management
    # ------------------------------------------------------------------

    def seed_nodes(self, node_ids: Iterable[int]) -> None:
        """Create the initial population ``V_0`` (before the first round).

        Seeded nodes are treated as having joined "long ago" (negative join
        round) so age-based maturity predicates hold from round 0 — the paper
        assumes the bootstrap phase starts from an already-connected network.
        """
        if self.round != 0 or self.lifecycle.records:
            raise RuntimeError("seed_nodes must be called once, before running")
        for v in node_ids:
            self.lifecycle.add(int(v), joined_round=-(10**6))
            self._spawn(int(v))

    def _spawn(self, v: int) -> None:
        self._protocols[v] = self.protocol_factory(v, self.services)
        self._rngs[v] = self.rng_service.node_stream(v)
        self.node_store.ensure(v)

    def protocol_of(self, v: int) -> NodeProtocol:
        """The protocol instance of an alive node (for audits and tests).

        Under sharding the returned object is the master's snapshot of the
        worker-owned instance: the first access per round gathers every
        node's state from the owning workers (lazy, cached until the next
        sharded compute phase), so audits and fingerprints read exactly
        what the workers hold without any per-round cost on runs that
        never look.
        """
        if self._shard is not None and self._gathered_round != self.round:
            self._shard.sync_protocols()
            self._gathered_round = self.round
        return self._protocols[v]

    def forward_node_call(self, v: int, name: str, args: tuple = ()) -> None:
        """Mirror an out-of-band mutation of node ``v`` to its owning shard.

        Harness helpers (e.g. probe queueing) mutate protocol objects
        between rounds.  At ``workers == 1`` the caller already touched the
        live object and this is a no-op; under sharding the call is queued
        and replayed by the owning worker at the start of the next round's
        compute phase, before any ``on_round``.
        """
        if self._shard is not None:
            self._shard.forward_call(v, name, args)

    def close(self) -> None:
        """Shut down shard workers and release shared slabs (W=1: no-op)."""
        if self._shard is not None:
            self._exchange_stats = self._shard.stats
            self._shard.close()
            self._shard = None

    def exchange_stats(self):
        """Cumulative shard-exchange byte counters, or ``None`` at W=1.

        Returns the live :class:`~repro.sim.exchange.ExchangeStats` while
        the shard runner is up, and the retained final snapshot after
        :meth:`close` — so post-run assertions (CI's pipe-share gate) work
        either way.
        """
        if self._shard is not None:
            return self._shard.stats
        return self._exchange_stats

    @property
    def alive(self) -> frozenset[int]:
        return self.lifecycle.alive

    # ------------------------------------------------------------------
    # Round execution
    # ------------------------------------------------------------------

    def run_round(self) -> RoundReport:
        t = self.round
        prof = self.profiler
        clock = prof.clock if prof is not None else None
        if clock is not None:
            _t0 = clock()
        if self.faults is not None:
            self.faults.begin_round(t)
        if self.services.epoch_cache is not None:
            self.services.epoch_cache.begin_round(t)

        # 1. Adversary phase.
        decision = ChurnDecision.none()
        rejected: str | None = None
        if self.adversary is not None and t >= self.adversary.active_from:
            view = AdversaryView(
                t,
                self.trace,
                self.lifecycle,
                topology_lateness=self.adversary.topology_lateness,
                state_lateness=self.adversary.state_lateness,
                budget_remaining=self.ledger.remaining(t),
            )
            proposed = self.adversary.decide(view)
            try:
                self.ledger.validate(t, proposed, self.lifecycle)
                decision = proposed
            except ChurnViolation as exc:
                if self.strict_budget:
                    raise
                rejected = str(exc)
                self.adversary.notify_rejected(proposed, rejected)

        for v in decision.leaves:
            self.lifecycle.remove(v, t)
            self._protocols.pop(v, None)
            self._rngs.pop(v, None)
            self.node_store.retire(v)
        join_notices: dict[int, list[JoinNotice]] = {}
        for j in decision.joins:
            self.lifecycle.add(j.new_id, t)
            self._spawn(j.new_id)
            join_notices.setdefault(j.bootstrap_id, []).append(JoinNotice(j.new_id))
        self.ledger.commit(t, decision)
        if clock is not None:
            _t1 = clock()

        # 2. Receive phase (post-churn survivors only).  A node joining this
        # round receives nothing this round: everything due now was sent
        # before it existed, so its id cannot legitimately be addressed yet
        # (and a delayed copy must never leak into a join round).
        alive = self.lifecycle.alive
        receivers = (
            alive.difference(j.new_id for j in decision.joins)
            if decision.joins
            else alive
        )
        inboxes, received = self.network.deliver(receivers)
        hop_delivery = self.network.hop_delivery
        for w, notices in join_notices.items():
            # The reference arrives out of band (handed over by the adversary);
            # it is knowledge, not a message, so it adds no edge.
            inboxes.setdefault(w, []).extend((-1, n) for n in notices)
        if clock is not None:
            _t2 = clock()

        # 3. Compute + send phase, deterministic node order (the sorted list
        # is cached across rounds and rebuilt only on actual churn).  A
        # stalled node skips its compute phase entirely: its inbox for this
        # round is lost and it sends nothing (a transient omission fault — it
        # stays alive and messages already in flight to it are unaffected).
        ordered = self._sorted_alive
        if ordered is None or decision.leaves or decision.joins:
            ordered = self._sorted_alive = sorted(alive)
        if self.workers > 1:
            if self._shard is None:
                from repro.sim.shard import ShardRunner

                self._shard = ShardRunner(self, self.workers)
            self._shard.run_compute(t, decision, inboxes, hop_delivery, ordered)
        else:
            hop_rows = hop_delivery.rows if hop_delivery is not None else None
            for v in ordered:
                if self.faults is not None and self.faults.stalled(t, v):
                    continue
                ctx = NodeContext(
                    node_id=v,
                    t=t,
                    inbox=inboxes.get(v, []),
                    rng=self._rngs[v],
                    params=self.params,
                    joined_round=self.lifecycle.joined_round(v),
                    network=self.network,
                    hops=hop_rows.get(v) if hop_rows is not None else None,
                    hop_delivery=hop_delivery,
                )
                self._protocols[v].on_round(ctx)
            store = self.node_store
            for v in ordered:
                self._protocols[v].publish_state(store, store.slot_of(v))
        if clock is not None:
            _t3 = clock()

        edges, sent = self.network.close_send_phase()
        self.trace.record(
            t,
            edges,
            alive,
            joins=tuple(j.new_id for j in decision.joins),
            leaves=tuple(decision.leaves),
        )
        fault_stats = self.faults.round_stats() if self.faults is not None else None
        phases: PhaseTimings | None = None
        if clock is not None:
            _t4 = clock()
            shard_secs: tuple[float, ...] = ()
            xch_pipe = xch_shm = 0
            if self._shard is not None:
                shard_secs = self._shard.last_shard_seconds
                xch_pipe, xch_shm = self._shard.last_round_bytes
            phases = prof.record(
                _t1 - _t0,
                _t2 - _t1,
                _t3 - _t2,
                _t4 - _t3,
                shards=shard_secs,
                exchange_bytes_pipe=xch_pipe,
                exchange_bytes_shm=xch_shm,
            )
        metrics = self.metrics.record_round(
            t, sent, received, len(alive), faults=fault_stats, phases=phases
        )
        health_events: tuple[DegradationEvent, ...] = ()
        if self.health is not None:
            health_events = self.health.observe(self, t)
        report = RoundReport(
            round=t,
            decision=decision,
            rejected=rejected,
            metrics=metrics,
            health=health_events,
        )
        self.reports.append(report)
        self.round += 1
        return report

    def run(self, rounds: int) -> list[RoundReport]:
        """Run ``rounds`` consecutive rounds and return their reports.

        The loop runs under :func:`~repro.util.gctune.deferred_gc`: the
        round allocates tracked containers far faster than it creates
        cycles, and default-cadence full-heap collections cost ~30% of round
        time at n=512 while reclaiming nothing (the protocol object graph
        is acyclic).  Single ``run_round`` calls are left untouched.
        """
        with deferred_gc():
            return [self.run_round() for _ in range(rounds)]
