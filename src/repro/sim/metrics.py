"""Congestion and message accounting.

The paper's headline complexity claim (Lemma 24) is ``O(log^3 n)`` messages
per node per round.  :class:`MetricsCollector` tracks, per round, the maximum
and mean number of messages sent/received per node, plus lifetime totals —
without retaining per-node-per-round matrices (memory stays O(rounds + n)).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sim.profile import PhaseTimings

__all__ = ["FaultRoundStats", "RoundMetrics", "MetricsCollector"]


@dataclass(frozen=True)
class FaultRoundStats:
    """Injected-fault counts for one round (see :mod:`repro.faults`)."""

    dropped: int = 0
    delayed: int = 0
    duplicated: int = 0
    stalled: int = 0
    deferred: int = 0

    @property
    def injected(self) -> int:
        """Total fault events injected this round."""
        return (
            self.dropped
            + self.delayed
            + self.duplicated
            + self.stalled
            + self.deferred
        )


@dataclass(frozen=True)
class RoundMetrics:
    """Aggregated message statistics for one round.

    ``faults`` is ``None`` unless a fault layer injected something this
    round — a faultless run's metrics are indistinguishable from a run
    without the fault layer at all.  ``phases`` carries the round's
    per-phase wall-time when a :class:`~repro.sim.profile.PhaseProfiler`
    is attached to the engine (``None`` otherwise).
    """

    round: int
    total_sent: int
    max_sent: int
    mean_sent: float
    max_received: int
    mean_received: float
    alive: int
    faults: FaultRoundStats | None = None
    phases: PhaseTimings | None = None


@dataclass
class MetricsCollector:
    """Accumulates per-round aggregates over a run."""

    history: list[RoundMetrics] = field(default_factory=list)

    def record_round(
        self,
        t: int,
        sent_per_node: dict[int, int],
        received_per_node: dict[int, int],
        alive_count: int,
        faults: FaultRoundStats | None = None,
        phases: PhaseTimings | None = None,
    ) -> RoundMetrics:
        sent = np.fromiter(sent_per_node.values(), dtype=np.int64) if sent_per_node else np.zeros(1, dtype=np.int64)
        recv = (
            np.fromiter(received_per_node.values(), dtype=np.int64)
            if received_per_node
            else np.zeros(1, dtype=np.int64)
        )
        metrics = RoundMetrics(
            round=t,
            total_sent=int(sent.sum()),
            max_sent=int(sent.max()),
            mean_sent=float(sent.sum() / max(1, alive_count)),
            max_received=int(recv.max()),
            mean_received=float(recv.sum() / max(1, alive_count)),
            alive=alive_count,
            faults=faults,
            phases=phases,
        )
        self.history.append(metrics)
        return metrics

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------

    @property
    def rounds(self) -> int:
        return len(self.history)

    def peak_congestion(self) -> int:
        """Highest per-node message count (sent or received) in any round."""
        if not self.history:
            return 0
        return max(max(m.max_sent, m.max_received) for m in self.history)

    def mean_congestion(self) -> float:
        """Mean messages sent per node per round over the whole run."""
        if not self.history:
            return 0.0
        return float(np.mean([m.mean_sent for m in self.history]))

    def total_messages(self) -> int:
        return sum(m.total_sent for m in self.history)

    def congestion_series(self) -> np.ndarray:
        """Per-round max_sent values, for scaling-law fits."""
        return np.array([m.max_sent for m in self.history], dtype=np.int64)

    def fault_totals(self) -> FaultRoundStats:
        """Lifetime injected-fault totals (all-zero when no faults fired)."""
        stats = [m.faults for m in self.history if m.faults is not None]
        return FaultRoundStats(
            dropped=sum(s.dropped for s in stats),
            delayed=sum(s.delayed for s in stats),
            duplicated=sum(s.duplicated for s in stats),
            stalled=sum(s.stalled for s in stats),
            deferred=sum(s.deferred for s in stats),
        )
